// Package netdev models the two host-network interfaces of the paper's
// testbed:
//
//   - LANCE: the DEC PMADD-AA TurboChannel Ethernet module. "This interface
//     does not have DMA capabilities to and from the host memory. Instead,
//     there are special packet buffers on board the controller that serve as
//     a staging area for data. The host transfers data between these buffers
//     and host memory using programmed I/O." Every byte therefore costs CPU
//     on both transmit and receive, and all demultiplexing is software.
//   - AN1: the DEC SRC AN1 controller, which DMAs to and from host memory
//     and demultiplexes in hardware: "a single field (called the buffer
//     queue index, BQI) in the link-level packet header provides a level of
//     indirection into a table kept in the controller" describing per-
//     endpoint receive rings. BQI zero is the protected kernel default.
//
// Devices deliver received packets to an installed handler in interrupt
// context after charging the device-inherent receive costs; the network I/O
// module layers demultiplexing, protection and buffering on top.
package netdev

import (
	"fmt"

	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/pkt"
	"ulp/internal/trace"
	"ulp/internal/wire"
)

// RxHandler consumes a received frame in interrupt context. For the AN1 the
// frame's Meta.BQI has been set from the link header by the controller.
type RxHandler func(b *pkt.Buf)

// Device is the interface the network I/O module drives.
type Device interface {
	wire.Station

	// Host returns the owning host.
	Host() *kern.Host

	// Name returns the device name for diagnostics.
	Name() string

	// HdrLen returns the link header length in bytes.
	HdrLen() int

	// MTU returns the maximum link payload.
	MTU() int

	// Transmit sends a complete link frame, charging the device's transmit
	// costs to the calling thread. Frames shorter than the link minimum
	// are padded.
	Transmit(t *kern.Thread, b *pkt.Buf)

	// SetRxHandler installs the interrupt-level receive handler.
	SetRxHandler(h RxHandler)

	// SetTrace attaches a trace bus; frame drops at the controller emit
	// FrameDrop events with a reason in Text.
	SetTrace(bus *trace.Bus)

	// Stats returns receive/transmit/drop counters.
	Stats() Stats
}

// Stats holds device counters.
type Stats struct {
	TxFrames, RxFrames, RxDropped int
	TxBytes, RxBytes              int64
}

// ---------------------------------------------------------------------------
// LANCE
// ---------------------------------------------------------------------------

// Lance is the programmed-I/O Ethernet interface.
type Lance struct {
	host    *kern.Host
	seg     *wire.Segment
	addr    link.Addr
	handler RxHandler
	bus     *trace.Bus
	stats   Stats
}

// NewLance creates a LANCE attached to the segment.
func NewLance(h *kern.Host, seg *wire.Segment, addr link.Addr) *Lance {
	d := &Lance{host: h, seg: seg, addr: addr}
	seg.Attach(d)
	return d
}

func (d *Lance) Host() *kern.Host         { return d.host }
func (d *Lance) Name() string             { return d.host.Name + ".lance" }
func (d *Lance) Addr() link.Addr          { return d.addr }
func (d *Lance) HdrLen() int              { return link.EthHeaderLen }
func (d *Lance) MTU() int                 { return link.EthMTU }
func (d *Lance) SetRxHandler(h RxHandler) { d.handler = h }
func (d *Lance) SetTrace(bus *trace.Bus)  { d.bus = bus }
func (d *Lance) Stats() Stats             { return d.stats }

// Transmit copies the frame into the on-board staging buffer with programmed
// I/O (charged to the calling thread), then lets the controller contend for
// the wire.
func (d *Lance) Transmit(t *kern.Thread, b *pkt.Buf) {
	if pad := link.EthHeaderLen + link.EthMinPayload - b.Len(); pad > 0 {
		// Pad to the Ethernet minimum; padding bytes cross the PIO path too.
		// Extend grows in place when storage allows (always, for pooled
		// minimum-size frames) instead of copying into a fresh buffer.
		b.Extend(pad)
	}
	c := t.Cost()
	t.Compute(c.DeviceCSR + c.LancePIO(b.Len()) + c.DeviceCSR)
	hdr, err := link.PeekEth(b)
	if err != nil {
		panic(fmt.Sprintf("netdev: transmit of malformed frame: %v", err))
	}
	d.stats.TxFrames++
	d.stats.TxBytes += int64(b.Len())
	d.seg.Transmit(d.addr, hdr.Dst, b)
}

// Deliver runs at frame arrival. The controller interrupts; the kernel's
// interrupt handler moves the packet from the staging buffer to host memory
// with programmed I/O ("on receives, the entire packet, complete with
// network headers, is made available to the protocol code") and then runs
// the installed receive handler.
func (d *Lance) Deliver(b *pkt.Buf) {
	if hdr, err := link.PeekEth(b); err != nil || (hdr.Dst != d.addr && !hdr.Dst.IsBroadcast()) {
		if d.bus.Enabled() {
			d.bus.Emit(trace.Event{Kind: trace.FrameDrop, Node: d.Name(),
				A: int64(b.Len()), Text: "addr-filter"})
		}
		b.Release() // address filter in the controller
		return
	}
	c := &d.host.Cost
	d.host.ComputeAsync(c.InterruptDispatch+c.LancePIO(b.Len()), func() {
		d.stats.RxFrames++
		d.stats.RxBytes += int64(b.Len())
		if d.handler != nil {
			d.handler(b)
		} else {
			d.stats.RxDropped++
			if d.bus.Enabled() {
				d.bus.Emit(trace.Event{Kind: trace.FrameDrop, Node: d.Name(),
					A: int64(b.Len()), Text: "no-handler"})
			}
			b.Release()
		}
	})
}

// ---------------------------------------------------------------------------
// AN1
// ---------------------------------------------------------------------------

// RingStatus describes one BQI receive ring's occupancy.
type RingStatus struct {
	Capacity int
	InUse    int
	Dropped  int
}

// an1Ring is one entry in the controller's BQI table: a ring of host
// buffers the controller DMAs into. autoRelease models consumers (the
// kernel default queue) that copy the packet out of the ring synchronously
// in their handler, recycling the buffer immediately; channel rings hold
// buffers until the owning library hands them back.
type an1Ring struct {
	status      RingStatus
	handler     RxHandler
	autoRelease bool
}

// AN1 is the DMA-capable interface with hardware demultiplexing.
type AN1 struct {
	host  *kern.Host
	seg   *wire.Segment
	addr  link.Addr
	mtu   int
	rings map[uint16]*an1Ring
	bus   *trace.Bus
	stats Stats
}

// NewAN1 creates an AN1 controller attached to the segment. The mtu
// parameter selects between the paper's 1500-byte encapsulation and the
// hardware's 64 KB frames (the ablation).
func NewAN1(h *kern.Host, seg *wire.Segment, addr link.Addr, mtu int) *AN1 {
	if mtu <= 0 {
		mtu = link.AN1EncapMTU
	}
	d := &AN1{host: h, seg: seg, addr: addr, mtu: mtu, rings: make(map[uint16]*an1Ring)}
	seg.Attach(d)
	return d
}

func (d *AN1) Host() *kern.Host { return d.host }
func (d *AN1) Name() string     { return d.host.Name + ".an1" }
func (d *AN1) Addr() link.Addr  { return d.addr }
func (d *AN1) HdrLen() int      { return link.AN1HeaderLen }
func (d *AN1) MTU() int         { return d.mtu }
func (d *AN1) Stats() Stats     { return d.stats }

// SetTrace attaches a trace bus for controller-level drop events.
func (d *AN1) SetTrace(bus *trace.Bus) { d.bus = bus }

// SetRxHandler installs the handler for the default kernel ring (BQI 0).
// The kernel copies packets out of the ring in its handler, so the ring
// recycles immediately.
func (d *AN1) SetRxHandler(h RxHandler) {
	d.rings[0] = &an1Ring{status: RingStatus{Capacity: 64}, handler: h, autoRelease: true}
}

// InstallRing binds a BQI to a ring of host buffers with the given handler.
// Only the network I/O module calls this; "strict access control to the
// index is maintained through memory protection". Ring buffers stay in use
// until Release.
func (d *AN1) InstallRing(bqi uint16, capacity int, h RxHandler) {
	d.rings[bqi] = &an1Ring{status: RingStatus{Capacity: capacity}, handler: h}
}

// RemoveRing unbinds a BQI (connection teardown).
func (d *AN1) RemoveRing(bqi uint16) { delete(d.rings, bqi) }

// RingStatus reports a ring's occupancy; ok is false if the BQI is unbound.
func (d *AN1) RingStatus(bqi uint16) (RingStatus, bool) {
	r, ok := d.rings[bqi]
	if !ok {
		return RingStatus{}, false
	}
	return r.status, true
}

// Release returns one buffer to the BQI's ring ("when the library is done
// with the buffer it hands it back to the network module which adds it to
// the BQI ring").
func (d *AN1) Release(bqi uint16) {
	if r, ok := d.rings[bqi]; ok && r.status.InUse > 0 {
		r.status.InUse--
	}
}

// Transmit writes a DMA descriptor (charged to the calling thread) and lets
// the controller stream the frame from host memory.
func (d *AN1) Transmit(t *kern.Thread, b *pkt.Buf) {
	c := t.Cost()
	t.Compute(c.AN1DMASetup + c.DeviceCSR)
	hdr, err := link.PeekAN1(b)
	if err != nil {
		panic(fmt.Sprintf("netdev: transmit of malformed AN1 frame: %v", err))
	}
	d.stats.TxFrames++
	d.stats.TxBytes += int64(b.Len())
	d.seg.Transmit(d.addr, hdr.Dst, b)
}

// Deliver runs at frame arrival: the controller reads the BQI from the link
// header, DMAs the frame into the next buffer of that ring (no CPU), and
// interrupts. The kernel handler performs only the ring bookkeeping before
// handing the buffer up.
func (d *AN1) Deliver(b *pkt.Buf) {
	hdr, err := link.PeekAN1(b)
	if err != nil || (hdr.Dst != d.addr && !hdr.Dst.IsBroadcast()) {
		if d.bus.Enabled() {
			d.bus.Emit(trace.Event{Kind: trace.FrameDrop, Node: d.Name(),
				A: int64(b.Len()), Text: "addr-filter"})
		}
		b.Release()
		return
	}
	ring, ok := d.rings[hdr.BQI]
	if !ok {
		// Unbound BQIs fall back to the protected kernel default.
		ring, ok = d.rings[0]
		if !ok {
			d.stats.RxDropped++
			if d.bus.Enabled() {
				d.bus.Emit(trace.Event{Kind: trace.FrameDrop, Node: d.Name(),
					A: int64(b.Len()), Text: "no-ring"})
			}
			b.Release()
			return
		}
		b.Meta.BQI = 0
	} else {
		b.Meta.BQI = hdr.BQI
	}
	if ring.status.InUse >= ring.status.Capacity {
		ring.status.Dropped++
		d.stats.RxDropped++
		if d.bus.Enabled() {
			d.bus.Emit(trace.Event{Kind: trace.FrameDrop, Node: d.Name(),
				A: int64(b.Len()), B: int64(hdr.BQI), Text: "ring-overflow"})
		}
		b.Release()
		return
	}
	ring.status.InUse++
	c := &d.host.Cost
	d.host.ComputeAsync(c.InterruptDispatch+c.AN1DeviceMgmt, func() {
		d.stats.RxFrames++
		d.stats.RxBytes += int64(b.Len())
		if ring.handler != nil {
			ring.handler(b)
		}
		if ring.autoRelease && ring.status.InUse > 0 {
			ring.status.InUse--
		}
	})
}
