package filter

import "encoding/binary"

// This file adds the compiled execution forms of the demultiplexing
// predicates. The interpreters in filter.go stay as the reference (and as
// the paper's cost model: the simulation still charges per *interpreted*
// instruction); compilation is a wall-clock optimization of the simulator
// itself. Each program compiles once, at installation time, into a chain of
// native Go closures: because both machines only ever transfer control
// forward (BPF jump offsets are unsigned, CSPF is jump-free), the chain is
// built back-to-front and every step captures its successor closures
// directly — no program counter, no opcode decode, no per-packet state
// object, with constants and bounds hoisted at compile time. The compiled
// forms return the same (accept, executed) pair as the interpreters on
// every input, a property the equivalence tests enforce, so cost accounting
// and virtual-time results are unchanged no matter which form runs.

// ---------------------------------------------------------------------------
// BPF
// ---------------------------------------------------------------------------

// bpfFn executes the program suffix starting at one instruction. State (the
// A and X registers, the executed count n) is threaded through arguments,
// so running a compiled program performs no allocation.
type bpfFn func(pkt []byte, a, x uint32, n int) (bool, int)

// BPFCompiled is a BPF program compiled to native closures.
type BPFCompiled struct {
	entry bpfFn
}

func bpfFalloff(pkt []byte, a, x uint32, n int) (bool, int) { return false, n }

// Compile translates the program into a closure chain. Unknown opcodes
// compile to a rejecting halt, and control transferred past the end of the
// program rejects, both matching the interpreter.
func (p BPFProgram) Compile() *BPFCompiled {
	steps := make([]bpfFn, len(p))
	at := func(j int) bpfFn {
		if j >= len(p) {
			return bpfFalloff
		}
		return steps[j]
	}
	for i := len(p) - 1; i >= 0; i-- {
		in := p[i]
		k := int(in.K)
		kw := in.K
		next := at(i + 1)
		switch in.Op {
		case BPFLdB:
			steps[i] = func(pkt []byte, a, x uint32, n int) (bool, int) {
				n++
				if k >= len(pkt) {
					return false, n
				}
				return next(pkt, uint32(pkt[k]), x, n)
			}
		case BPFLdH:
			steps[i] = func(pkt []byte, a, x uint32, n int) (bool, int) {
				n++
				if k+2 > len(pkt) {
					return false, n
				}
				return next(pkt, uint32(binary.BigEndian.Uint16(pkt[k:])), x, n)
			}
		case BPFLdW:
			steps[i] = func(pkt []byte, a, x uint32, n int) (bool, int) {
				n++
				if k+4 > len(pkt) {
					return false, n
				}
				return next(pkt, binary.BigEndian.Uint32(pkt[k:]), x, n)
			}
		case BPFLdBI:
			steps[i] = func(pkt []byte, a, x uint32, n int) (bool, int) {
				n++
				j := int(x) + k
				if j >= len(pkt) {
					return false, n
				}
				return next(pkt, uint32(pkt[j]), x, n)
			}
		case BPFLdHI:
			steps[i] = func(pkt []byte, a, x uint32, n int) (bool, int) {
				n++
				j := int(x) + k
				if j+2 > len(pkt) {
					return false, n
				}
				return next(pkt, uint32(binary.BigEndian.Uint16(pkt[j:])), x, n)
			}
		case BPFLdxMSH:
			steps[i] = func(pkt []byte, a, x uint32, n int) (bool, int) {
				n++
				if k >= len(pkt) {
					return false, n
				}
				return next(pkt, a, 4*uint32(pkt[k]&0x0f), n)
			}
		case BPFJEq:
			onT, onF := at(i+1+int(in.Jt)), at(i+1+int(in.Jf))
			steps[i] = func(pkt []byte, a, x uint32, n int) (bool, int) {
				n++
				if a == kw {
					return onT(pkt, a, x, n)
				}
				return onF(pkt, a, x, n)
			}
		case BPFJGt:
			onT, onF := at(i+1+int(in.Jt)), at(i+1+int(in.Jf))
			steps[i] = func(pkt []byte, a, x uint32, n int) (bool, int) {
				n++
				if a > kw {
					return onT(pkt, a, x, n)
				}
				return onF(pkt, a, x, n)
			}
		case BPFJSet:
			onT, onF := at(i+1+int(in.Jt)), at(i+1+int(in.Jf))
			steps[i] = func(pkt []byte, a, x uint32, n int) (bool, int) {
				n++
				if a&kw != 0 {
					return onT(pkt, a, x, n)
				}
				return onF(pkt, a, x, n)
			}
		case BPFRet:
			acc := in.K != 0
			steps[i] = func(pkt []byte, a, x uint32, n int) (bool, int) {
				return acc, n + 1
			}
		case BPFAndK:
			steps[i] = func(pkt []byte, a, x uint32, n int) (bool, int) {
				return next(pkt, a&kw, x, n+1)
			}
		case BPFTax:
			steps[i] = func(pkt []byte, a, x uint32, n int) (bool, int) {
				return next(pkt, a, a, n+1)
			}
		case BPFTxa:
			steps[i] = func(pkt []byte, a, x uint32, n int) (bool, int) {
				return next(pkt, x, x, n+1)
			}
		default:
			steps[i] = func(pkt []byte, a, x uint32, n int) (bool, int) {
				return false, n + 1
			}
		}
	}
	entry := bpfFalloff
	if len(steps) > 0 {
		entry = steps[0]
	}
	return &BPFCompiled{entry: entry}
}

// Run executes the compiled program, returning the same acceptance and
// executed-instruction count as the interpreter.
func (c *BPFCompiled) Run(packet []byte) (accept bool, executed int) {
	return c.entry(packet, 0, 0, 0)
}

// ---------------------------------------------------------------------------
// CSPF
// ---------------------------------------------------------------------------

// CSPF has no jumps, so the operand stack is fully static: the depth at
// every instruction, and which slots hold compile-time constants, are
// known when the program is installed. Compilation therefore partially
// evaluates the program — constant operands fold away (a CAND's pushed 1
// never exists at run time), and only packet-dependent values occupy
// run-time state. That state is at most eight 16-bit values packed into
// two uint64 "register files" threaded through the closure chain in CPU
// registers: no stack object, no per-instruction dispatch. Because control
// only ever exits forward, the executed-instruction count at every exit
// site is a compile-time constant, preserving the interpreter's cost
// accounting bit for bit.
//
// cspfNode executes the chain from one compiled action. ra holds dynamic
// stack positions 0-3 (16 bits each), rb positions 4-7.
type cspfNode func(pkt []byte, ra, rb uint64) (bool, int)

// CSPFCompiled is a CSPF program compiled to native closures.
type CSPFCompiled struct {
	entry cspfNode
}

// cspfOperand is a symbolic stack slot: a compile-time constant or a
// dynamic value living in register slot reg.
type cspfOperand struct {
	isConst bool
	c       uint16
	reg     int
}

// cspfGet reads an operand: the constant itself, or the operand's register
// slot out of the packed register files.
func cspfGet(o cspfOperand, ra, rb uint64) uint16 {
	if o.isConst {
		return o.c
	}
	if o.reg < 4 {
		return uint16(ra >> (16 * o.reg))
	}
	return uint16(rb >> (16 * (o.reg - 4)))
}

// cspfSet stores v into register slot reg of (ra, rb).
func cspfSet(reg int, v uint16, ra, rb uint64) (uint64, uint64) {
	if reg < 4 {
		sh := 16 * reg
		return ra&^(0xffff<<sh) | uint64(v)<<sh, rb
	}
	sh := 16 * (reg - 4)
	return ra, rb&^(0xffff<<sh) | uint64(v)<<sh
}

// cspfApply evaluates a binary operator on concrete values.
func cspfApply(op CSPFOp, a, b uint16) uint16 {
	var v uint16
	switch op {
	case CSPFEq:
		if a == b {
			v = 1
		}
	case CSPFNeq:
		if a != b {
			v = 1
		}
	case CSPFLt:
		if a < b {
			v = 1
		}
	case CSPFLe:
		if a <= b {
			v = 1
		}
	case CSPFGt:
		if a > b {
			v = 1
		}
	case CSPFGe:
		if a >= b {
			v = 1
		}
	case CSPFAnd:
		v = a & b
	case CSPFOr:
		v = a | b
	case CSPFXor:
		v = a ^ b
	case CSPFAdd:
		v = a + b
	case CSPFSub:
		v = a - b
	}
	return v
}

// cspfAction is one run-time step produced by symbolic execution; purely
// static instructions (literal pushes, constant folds, statically decided
// short-circuits) emit no action at all.
type cspfAction struct {
	kind   int // 0 load, 1 binop, 2 cand, 3 cor, 4 static exit, 5 final, 6 fused load-compare, 7 fused load-binop-compare
	off    int // load: byte offset into the packet
	dst    int // load/binop: destination register slot
	op     CSPFOp
	a, b   cspfOperand
	n      int  // static executed count at this action's exit
	accVal bool // static exit: result
	final  cspfOperand
	hasTop bool
	// Fused forms (kinds 6, 7): cmp is the comparison constant, cor selects
	// COR (accept on match) over CAND (reject on mismatch), and n2 is the
	// executed count when the fused load runs out of bounds (n stays the
	// count at the comparison's exit).
	cmp uint16
	cor bool
	n2  int
}

// cspfCompareConst recognizes a CAND/COR action that compares register slot
// reg against a compile-time constant, returning the constant and whether
// the action is a COR.
func cspfCompareConst(a cspfAction, reg int) (c uint16, cor bool, ok bool) {
	if a.kind != 2 && a.kind != 3 {
		return 0, false, false
	}
	switch {
	case !a.a.isConst && a.a.reg == reg && a.b.isConst:
		c = a.b.c
	case !a.b.isConst && a.b.reg == reg && a.a.isConst:
		c = a.a.c
	default:
		return 0, false, false
	}
	return c, a.kind == 3, true
}

// cspfFuse runs peepholes over the action list. The code generator's two
// field-test shapes — PushWord/PushLit/CAND and PushWord/PushLit/And/
// PushLit/CAND — lower to a load whose register dies at the very next
// comparison (register slots are stack positions, so a popped slot is never
// read again). Fusing each shape into one action removes the register-file
// traffic and most of the indirect calls from the chain.
func cspfFuse(acts []cspfAction) []cspfAction {
	out := make([]cspfAction, 0, len(acts))
	for i := 0; i < len(acts); i++ {
		a := acts[i]
		if a.kind == 0 && i+1 < len(acts) {
			if c, cor, ok := cspfCompareConst(acts[i+1], a.dst); ok {
				out = append(out, cspfAction{kind: 6, off: a.off,
					cmp: c, cor: cor, n2: a.n, n: acts[i+1].n})
				i++
				continue
			}
			if b := acts[i+1]; i+2 < len(acts) && b.kind == 1 &&
				!b.a.isConst && b.a.reg == a.dst && b.b.isConst {
				if c, cor, ok := cspfCompareConst(acts[i+2], b.dst); ok {
					out = append(out, cspfAction{kind: 7, off: a.off,
						op: b.op, b: b.b,
						cmp: c, cor: cor, n2: a.n, n: acts[i+2].n})
					i += 2
					continue
				}
			}
		}
		out = append(out, a)
	}
	return out
}

// Compile translates the stack program via compile-time symbolic execution
// into a closure chain over packed registers. Programs whose dynamic
// values would exceed the eight register slots (never produced by
// CompileCSPF) fall back to the reference interpreter, which is trivially
// equivalent.
func (p CSPFProgram) Compile() *CSPFCompiled {
	actions, ok := p.lower()
	if ok {
		actions = cspfFuse(actions)
	} else {
		return &CSPFCompiled{entry: func(pkt []byte, ra, rb uint64) (bool, int) {
			return p.Run(pkt)
		}}
	}
	// Build the chain back to front; every action captures its successor.
	var next cspfNode
	for i := len(actions) - 1; i >= 0; i-- {
		act := actions[i]
		nx := next
		switch act.kind {
		case 0: // load packet word, bounds-checked
			off, dst, failN := act.off, act.dst, act.n
			next = func(pkt []byte, ra, rb uint64) (bool, int) {
				if off+2 > len(pkt) {
					return false, failN
				}
				ra, rb = cspfSet(dst, binary.BigEndian.Uint16(pkt[off:]), ra, rb)
				return nx(pkt, ra, rb)
			}
		case 1: // binary operator into a register
			op, a, b, dst := act.op, act.a, act.b, act.dst
			next = func(pkt []byte, ra, rb uint64) (bool, int) {
				v := cspfApply(op, cspfGet(a, ra, rb), cspfGet(b, ra, rb))
				ra, rb = cspfSet(dst, v, ra, rb)
				return nx(pkt, ra, rb)
			}
		case 2: // CAND: reject on mismatch
			a, b, failN := act.a, act.b, act.n
			next = func(pkt []byte, ra, rb uint64) (bool, int) {
				if cspfGet(a, ra, rb) != cspfGet(b, ra, rb) {
					return false, failN
				}
				return nx(pkt, ra, rb)
			}
		case 3: // COR: accept on match
			a, b, succN := act.a, act.b, act.n
			next = func(pkt []byte, ra, rb uint64) (bool, int) {
				if cspfGet(a, ra, rb) == cspfGet(b, ra, rb) {
					return true, succN
				}
				return nx(pkt, ra, rb)
			}
		case 4: // statically decided exit
			acc, n := act.accVal, act.n
			next = func(pkt []byte, ra, rb uint64) (bool, int) {
				return acc, n
			}
		case 6: // fused load + compare against a constant
			off, c, loadN, cmpN := act.off, act.cmp, act.n2, act.n
			if act.cor {
				next = func(pkt []byte, ra, rb uint64) (bool, int) {
					if off+2 > len(pkt) {
						return false, loadN
					}
					if binary.BigEndian.Uint16(pkt[off:]) == c {
						return true, cmpN
					}
					return nx(pkt, ra, rb)
				}
			} else {
				next = func(pkt []byte, ra, rb uint64) (bool, int) {
					if off+2 > len(pkt) {
						return false, loadN
					}
					if binary.BigEndian.Uint16(pkt[off:]) != c {
						return false, cmpN
					}
					return nx(pkt, ra, rb)
				}
			}
		case 7: // fused load + binop with a constant + compare
			off, op, m, c, loadN, cmpN, cor := act.off, act.op, act.b.c, act.cmp, act.n2, act.n, act.cor
			if op == CSPFAnd && !cor { // the generator's masked-field test
				next = func(pkt []byte, ra, rb uint64) (bool, int) {
					if off+2 > len(pkt) {
						return false, loadN
					}
					if binary.BigEndian.Uint16(pkt[off:])&m != c {
						return false, cmpN
					}
					return nx(pkt, ra, rb)
				}
			} else {
				next = func(pkt []byte, ra, rb uint64) (bool, int) {
					if off+2 > len(pkt) {
						return false, loadN
					}
					hit := cspfApply(op, binary.BigEndian.Uint16(pkt[off:]), m) == c
					if cor {
						if hit {
							return true, cmpN
						}
					} else if !hit {
						return false, cmpN
					}
					return nx(pkt, ra, rb)
				}
			}
		case 5: // normal termination: accept on non-zero top of stack
			n := act.n
			if !act.hasTop {
				next = func(pkt []byte, ra, rb uint64) (bool, int) {
					return false, n
				}
			} else if act.final.isConst {
				acc := act.final.c != 0
				next = func(pkt []byte, ra, rb uint64) (bool, int) {
					return acc, n
				}
			} else {
				top := act.final
				next = func(pkt []byte, ra, rb uint64) (bool, int) {
					return cspfGet(top, ra, rb) != 0, n
				}
			}
		}
	}
	return &CSPFCompiled{entry: next}
}

// lower symbolically executes the program, producing the run-time action
// list. It reports ok=false when a dynamic value would land beyond the
// eight register slots.
func (p CSPFProgram) lower() ([]cspfAction, bool) {
	var acts []cspfAction
	var stack []cspfOperand // symbolic stack
	// Register slots are allocated by live-dynamic-value count, not stack
	// position: constants occupy stack positions but no run-time slot, and
	// the stack's LIFO discipline means dynamic values always appear on it
	// in increasing slot order, so popping frees the highest slots. Eight
	// live packet-dependent values is therefore the true capacity, not
	// depth eight.
	liveDyn := 0
	pop2 := func() (a, b cspfOperand) {
		a, b = stack[len(stack)-2], stack[len(stack)-1]
		stack = stack[:len(stack)-2]
		if !a.isConst {
			liveDyn--
		}
		if !b.isConst {
			liveDyn--
		}
		return a, b
	}
	emit := func(a cspfAction) { acts = append(acts, a) }
	exit := func(accept bool, n int) []cspfAction {
		emit(cspfAction{kind: 4, accVal: accept, n: n})
		return acts
	}
	for i, in := range p {
		switch in.Op {
		case CSPFPushWord:
			if len(stack) >= cspfStackDepth {
				return exit(false, i+1), true
			}
			dst := liveDyn
			if dst >= 8 {
				return nil, false
			}
			liveDyn++
			emit(cspfAction{kind: 0, off: int(in.Arg) * 2, dst: dst, n: i + 1})
			stack = append(stack, cspfOperand{reg: dst})
		case CSPFPushLit:
			if len(stack) >= cspfStackDepth {
				return exit(false, i+1), true
			}
			stack = append(stack, cspfOperand{isConst: true, c: in.Arg})
		case CSPFCor, CSPFCand:
			if len(stack) < 2 {
				return exit(false, i+1), true
			}
			a, b := pop2()
			if a.isConst && b.isConst {
				// Statically decided short-circuit.
				if in.Op == CSPFCor {
					if a.c == b.c {
						return exit(true, i+1), true
					}
					stack = append(stack, cspfOperand{isConst: true, c: 0})
				} else {
					if a.c != b.c {
						return exit(false, i+1), true
					}
					stack = append(stack, cspfOperand{isConst: true, c: 1})
				}
				continue
			}
			if in.Op == CSPFCor {
				emit(cspfAction{kind: 3, a: a, b: b, n: i + 1})
				stack = append(stack, cspfOperand{isConst: true, c: 0})
			} else {
				emit(cspfAction{kind: 2, a: a, b: b, n: i + 1})
				stack = append(stack, cspfOperand{isConst: true, c: 1})
			}
		case CSPFEq, CSPFNeq, CSPFLt, CSPFLe, CSPFGt, CSPFGe,
			CSPFAnd, CSPFOr, CSPFXor, CSPFAdd, CSPFSub:
			if len(stack) < 2 {
				return exit(false, i+1), true
			}
			a, b := pop2()
			if a.isConst && b.isConst {
				stack = append(stack, cspfOperand{isConst: true, c: cspfApply(in.Op, a.c, b.c)})
				continue
			}
			dst := liveDyn
			if dst >= 8 {
				return nil, false
			}
			liveDyn++
			emit(cspfAction{kind: 1, op: in.Op, a: a, b: b, dst: dst})
			stack = append(stack, cspfOperand{reg: dst})
		default:
			// The interpreter pops two then rejects through its inner
			// default; either way this instruction rejects.
			return exit(false, i+1), true
		}
	}
	fin := cspfAction{kind: 5, n: len(p)}
	if len(stack) > 0 {
		fin.hasTop = true
		fin.final = stack[len(stack)-1]
	}
	emit(fin)
	return acts, true
}

// Run executes the compiled program, returning the same acceptance and
// executed-instruction count as the interpreter.
func (c *CSPFCompiled) Run(packet []byte) (accept bool, executed int) {
	return c.entry(packet, 0, 0)
}

// ---------------------------------------------------------------------------
// Native predicate with hoisted constants
// ---------------------------------------------------------------------------

// Compile returns the native demultiplexing predicate with every constant
// hoisted out of the per-packet path: addresses pre-packed into words, the
// wildcard decisions taken once at compile time instead of per packet. The
// closure accepts exactly the frames Match accepts; netio installs this
// form for its software demux bindings.
func (s Spec) Compile() func(frame []byte) bool {
	l := s.LinkHdrLen
	minLen := l + 20
	proto := s.Proto
	localIP := binary.BigEndian.Uint32(s.LocalIP[:])
	localPort := s.LocalPort
	checkRemoteIP := s.RemoteIP != ([4]byte{})
	remoteIP := binary.BigEndian.Uint32(s.RemoteIP[:])
	remotePort := s.RemotePort
	return func(frame []byte) bool {
		if len(frame) < minLen {
			return false
		}
		if binary.BigEndian.Uint16(frame[l-2:]) != 0x0800 {
			return false
		}
		ip := frame[l:]
		if ip[0]>>4 != 4 {
			return false
		}
		if ip[9] != proto {
			return false
		}
		if binary.BigEndian.Uint32(ip[16:]) != localIP {
			return false
		}
		if checkRemoteIP && binary.BigEndian.Uint32(ip[12:]) != remoteIP {
			return false
		}
		if binary.BigEndian.Uint16(ip[6:])&0x1fff != 0 {
			return false // non-first fragment: no transport header
		}
		ihl := int(ip[0]&0x0f) * 4
		if ihl < 20 || len(ip) < ihl+4 {
			return false
		}
		if binary.BigEndian.Uint16(ip[ihl+2:]) != localPort {
			return false
		}
		if remotePort != 0 && binary.BigEndian.Uint16(ip[ihl:]) != remotePort {
			return false
		}
		return true
	}
}
