package filter

import "encoding/binary"

// Spec describes one endpoint's input demultiplexing predicate over an
// incoming link frame carrying IPv4: protocol, local (destination) address
// and port, and — for connected endpoints — remote (source) address and
// port. Zero remote fields are wildcards, as for a listening socket.
//
// The registry server constructs a Spec per endpoint at connection-setup
// time and installs it with the network I/O module, which demultiplexes
// with direct native code ("the demultiplexing logic requires only a few
// instructions", synthesized into the kernel); the CSPF and BPF compilers
// exist to reproduce the paper's interpreter-architecture comparison.
type Spec struct {
	// LinkHdrLen is the link header size in bytes (14 Ethernet, 16 AN1).
	LinkHdrLen int
	// Proto is the IPv4 protocol number (6 TCP, 17 UDP).
	Proto uint8
	// LocalIP and LocalPort are the endpoint's own address (packet
	// destination fields).
	LocalIP   [4]byte
	LocalPort uint16
	// RemoteIP and RemotePort constrain the packet source; zero values are
	// wildcards.
	RemoteIP   [4]byte
	RemotePort uint16
}

// Match is the native demultiplexing predicate: the direct-execution code
// the kernel synthesizes. It handles variable IP header lengths and skips
// non-first fragments (whose transport ports are absent).
func (s Spec) Match(frame []byte) bool {
	l := s.LinkHdrLen
	if len(frame) < l+20 {
		return false
	}
	if binary.BigEndian.Uint16(frame[l-2:]) != 0x0800 {
		return false
	}
	ip := frame[l:]
	if ip[0]>>4 != 4 {
		return false
	}
	if ip[9] != s.Proto {
		return false
	}
	if [4]byte(ip[16:20]) != s.LocalIP {
		return false
	}
	if s.RemoteIP != ([4]byte{}) && [4]byte(ip[12:16]) != s.RemoteIP {
		return false
	}
	if binary.BigEndian.Uint16(ip[6:])&0x1fff != 0 {
		return false // non-first fragment: no transport header
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < 20 || len(ip) < ihl+4 {
		return false
	}
	srcPort := binary.BigEndian.Uint16(ip[ihl:])
	dstPort := binary.BigEndian.Uint16(ip[ihl+2:])
	if dstPort != s.LocalPort {
		return false
	}
	if s.RemotePort != 0 && srcPort != s.RemotePort {
		return false
	}
	return true
}

// CompileBPF emits the register-machine form of the predicate, using the
// classic LdxMSH idiom to handle variable IP header lengths.
func (s Spec) CompileBPF() BPFProgram {
	l := uint32(s.LinkHdrLen)
	var p BPFProgram
	emit := func(in BPFInstr) { p = append(p, in) }
	// Each test either falls through (match) or jumps to the final reject.
	// Jump offsets are patched at the end.
	type patch struct{ idx int }
	var rejects []patch
	test := func(in BPFInstr, cmp BPFInstr) {
		emit(in)
		rejects = append(rejects, patch{len(p)})
		emit(cmp) // Jf patched to reject
	}
	test(BPFInstr{Op: BPFLdH, K: l - 2}, BPFInstr{Op: BPFJEq, K: 0x0800})
	test(BPFInstr{Op: BPFLdB, K: l + 9}, BPFInstr{Op: BPFJEq, K: uint32(s.Proto)})
	test(BPFInstr{Op: BPFLdW, K: l + 16}, BPFInstr{Op: BPFJEq, K: binary.BigEndian.Uint32(s.LocalIP[:])})
	if s.RemoteIP != ([4]byte{}) {
		test(BPFInstr{Op: BPFLdW, K: l + 12}, BPFInstr{Op: BPFJEq, K: binary.BigEndian.Uint32(s.RemoteIP[:])})
	}
	// Reject fragments with nonzero offset: JSet jumps to reject on match,
	// so emit it inverted.
	emit(BPFInstr{Op: BPFLdH, K: l + 6})
	fragIdx := len(p)
	emit(BPFInstr{Op: BPFJSet, K: 0x1fff}) // Jt patched to reject
	emit(BPFInstr{Op: BPFLdxMSH, K: l})
	test(BPFInstr{Op: BPFLdHI, K: l + 2}, BPFInstr{Op: BPFJEq, K: uint32(s.LocalPort)})
	if s.RemotePort != 0 {
		test(BPFInstr{Op: BPFLdHI, K: l}, BPFInstr{Op: BPFJEq, K: uint32(s.RemotePort)})
	}
	acceptIdx := len(p)
	emit(BPFInstr{Op: BPFRet, K: 1})
	rejectIdx := len(p)
	emit(BPFInstr{Op: BPFRet, K: 0})
	_ = acceptIdx
	for _, pt := range rejects {
		p[pt.idx].Jf = uint8(rejectIdx - pt.idx - 1)
	}
	p[fragIdx].Jt = uint8(rejectIdx - fragIdx - 1)
	return p
}

// CompileCSPF emits the stack-machine form. CSPF has no indexed loads, so —
// like the historical filters — it assumes the standard 20-byte IP header
// and cannot demultiplex packets carrying IP options. Each field test uses
// the short-circuit CAND so a mismatch rejects immediately.
func (s Spec) CompileCSPF() CSPFProgram {
	lw := uint16(s.LinkHdrLen / 2) // link header length in 16-bit words
	var p CSPFProgram
	word := func(w, lit uint16) {
		p = append(p,
			CSPFInstr{Op: CSPFPushWord, Arg: w},
			CSPFInstr{Op: CSPFPushLit, Arg: lit},
			CSPFInstr{Op: CSPFCand},
		)
	}
	// EtherType at word lw-1.
	word(lw-1, 0x0800)
	// Protocol: low byte of the TTL/proto word (IP word 4).
	p = append(p,
		CSPFInstr{Op: CSPFPushWord, Arg: lw + 4},
		CSPFInstr{Op: CSPFPushLit, Arg: 0x00ff},
		CSPFInstr{Op: CSPFAnd},
		CSPFInstr{Op: CSPFPushLit, Arg: uint16(s.Proto)},
		CSPFInstr{Op: CSPFCand},
	)
	// Fragment offset bits of the flags/frag word (IP word 3) must be 0.
	p = append(p,
		CSPFInstr{Op: CSPFPushWord, Arg: lw + 3},
		CSPFInstr{Op: CSPFPushLit, Arg: 0x1fff},
		CSPFInstr{Op: CSPFAnd},
		CSPFInstr{Op: CSPFPushLit, Arg: 0},
		CSPFInstr{Op: CSPFCand},
	)
	// Destination IP (IP words 8, 9).
	word(lw+8, binary.BigEndian.Uint16(s.LocalIP[0:2]))
	word(lw+9, binary.BigEndian.Uint16(s.LocalIP[2:4]))
	if s.RemoteIP != ([4]byte{}) {
		word(lw+6, binary.BigEndian.Uint16(s.RemoteIP[0:2]))
		word(lw+7, binary.BigEndian.Uint16(s.RemoteIP[2:4]))
	}
	// Ports, assuming IHL=5: transport header at IP word 10.
	word(lw+11, s.LocalPort)
	if s.RemotePort != 0 {
		word(lw+10, s.RemotePort)
	}
	return p
}
