package filter

import (
	"math/rand"
	"testing"
)

// randSpec produces a random demux spec, sometimes with wildcard remote
// fields, over Ethernet or AN1 link header lengths.
func randSpec(rng *rand.Rand) Spec {
	s := Spec{
		LinkHdrLen: []int{14, 16}[rng.Intn(2)],
		Proto:      []uint8{6, 17}[rng.Intn(2)],
		LocalPort:  uint16(rng.Intn(65536)),
	}
	rng.Read(s.LocalIP[:])
	if rng.Intn(2) == 0 {
		rng.Read(s.RemoteIP[:])
		s.RemotePort = uint16(1 + rng.Intn(65535))
	}
	return s
}

// randFrame produces a frame that sometimes matches the spec, sometimes
// differs in one field, and sometimes is random garbage or truncated —
// covering accept paths, every reject path, and bounds handling.
func randFrame(rng *rand.Rand, s Spec) []byte {
	l := s.LinkHdrLen
	n := l + 20 + 8 + rng.Intn(64)
	f := make([]byte, n)
	rng.Read(f)
	switch rng.Intn(8) {
	case 0: // pure garbage
		return f
	case 1: // truncated
		return f[:rng.Intn(len(f))]
	}
	// Construct a matching frame, then maybe perturb one field.
	f[l-2], f[l-1] = 0x08, 0x00
	ihl := 5 + rng.Intn(3)
	f[l] = 0x40 | byte(ihl)
	f[l+6] &= 0xe0 // first fragment
	f[l+7] = 0
	f[l+9] = s.Proto
	copy(f[l+12:], s.RemoteIP[:])
	copy(f[l+16:], s.LocalIP[:])
	tp := l + ihl*4
	if tp+4 > len(f) {
		return f[:rng.Intn(len(f))]
	}
	f[tp] = byte(s.RemotePort >> 8)
	f[tp+1] = byte(s.RemotePort)
	f[tp+2] = byte(s.LocalPort >> 8)
	f[tp+3] = byte(s.LocalPort)
	if rng.Intn(2) == 0 {
		f[rng.Intn(len(f))] ^= 1 << rng.Intn(8) // perturb one bit anywhere
	}
	return f
}

// TestCompiledEquivalence verifies the three compiled forms (BPF threaded
// code, CSPF threaded code, hoisted native predicate) agree exactly with
// their reference implementations — acceptance AND executed instruction
// count — over randomized specs and frames.
func TestCompiledEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		s := randSpec(rng)
		bpf := s.CompileBPF()
		bpfc := bpf.Compile()
		cspf := s.CompileCSPF()
		cspfc := cspf.Compile()
		native := s.Compile()
		for j := 0; j < 40; j++ {
			f := randFrame(rng, s)
			ba, bn := bpf.Run(f)
			ca, cn := bpfc.Run(f)
			if ba != ca || bn != cn {
				t.Fatalf("BPF divergence: interp (%v,%d) compiled (%v,%d)\nspec %+v\nframe %x", ba, bn, ca, cn, s, f)
			}
			sa, sn := cspf.Run(f)
			ka, kn := cspfc.Run(f)
			if sa != ka || sn != kn {
				t.Fatalf("CSPF divergence: interp (%v,%d) compiled (%v,%d)\nspec %+v\nframe %x", sa, sn, ka, kn, s, f)
			}
			if got, want := native(f), s.Match(f); got != want {
				t.Fatalf("native divergence: compiled %v, Match %v\nspec %+v\nframe %x", got, want, s, f)
			}
		}
	}
}

// TestCompiledEquivalenceRandomPrograms drives arbitrary (mostly
// meaningless) programs through both execution forms: malformed programs
// must reject identically, with identical instruction counts, never fault.
func TestCompiledEquivalenceRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		n := 1 + rng.Intn(24)
		bp := make(BPFProgram, n)
		for j := range bp {
			bp[j] = BPFInstr{
				Op: BPFOp(rng.Intn(14)), // includes one invalid opcode value
				K:  uint32(rng.Intn(128)),
				Jt: uint8(rng.Intn(6)),
				Jf: uint8(rng.Intn(6)),
			}
		}
		cp := make(CSPFProgram, n)
		for j := range cp {
			cp[j] = CSPFInstr{Op: CSPFOp(rng.Intn(15)), Arg: uint16(rng.Intn(64))}
		}
		bpc := bp.Compile()
		cpc := cp.Compile()
		for j := 0; j < 20; j++ {
			f := make([]byte, rng.Intn(96))
			rng.Read(f)
			ba, bn := bp.Run(f)
			ca, cn := bpc.Run(f)
			if ba != ca || bn != cn {
				t.Fatalf("BPF divergence on random program: interp (%v,%d) compiled (%v,%d)\nprog %+v\npkt %x", ba, bn, ca, cn, bp, f)
			}
			sa, sn := cp.Run(f)
			ka, kn := cpc.Run(f)
			if sa != ka || sn != kn {
				t.Fatalf("CSPF divergence on random program: interp (%v,%d) compiled (%v,%d)\nprog %+v\npkt %x", sa, sn, ka, kn, cp, f)
			}
		}
	}
}
