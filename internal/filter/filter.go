// Package filter implements software input-packet demultiplexing in the two
// architectures the paper discusses:
//
//   - CSPF: the original stack-based Packet Filter language of Mogul, Rashid
//     and Accetta [18], in which "filter programs composed of stack
//     operations and operators are interpreted by a kernel-resident program
//     at packet reception time". The paper observes this interpretation "is
//     not likely to scale with CPU speeds because it is memory intensive".
//   - BPF: the register-based architecture of McCanne and Jacobson [17],
//     which "recognizes these issues and provides higher performance suited
//     for modern RISC processors".
//
// Both virtual machines report the number of instructions executed, so the
// simulation can charge interpretation cost, and the ablation benchmark can
// compare architectures on identical demultiplexing predicates.
package filter

import (
	"encoding/binary"
	"fmt"
)

// ---------------------------------------------------------------------------
// CSPF: stack machine
// ---------------------------------------------------------------------------

// CSPFOp is a stack-machine opcode.
type CSPFOp uint8

// CSPF opcodes. PUSHWORD pushes the 16-bit packet word at a word offset;
// PUSHLIT pushes an immediate. Binary operators pop two, push one. The
// short-circuit forms (COR, CAND) return immediately on success or failure
// respectively, which real CSPF filters rely on heavily.
const (
	CSPFPushWord CSPFOp = iota
	CSPFPushLit
	CSPFEq
	CSPFNeq
	CSPFLt
	CSPFLe
	CSPFGt
	CSPFGe
	CSPFAnd
	CSPFOr
	CSPFXor
	CSPFAdd
	CSPFSub
	CSPFCor  // pop a,b; if a==b accept immediately, else push 0
	CSPFCand // pop a,b; if a!=b reject immediately, else push 1
)

// CSPFInstr is one stack-machine instruction.
type CSPFInstr struct {
	Op  CSPFOp
	Arg uint16 // word offset for PushWord, immediate for PushLit
}

// CSPFProgram is a filter program. The packet is accepted if the program
// runs to completion with a non-zero value on top of the stack, or exits
// early through a short-circuit accept.
type CSPFProgram []CSPFInstr

const cspfStackDepth = 32

// Run interprets the program over the packet. It returns whether the packet
// is accepted and how many instructions were executed (for cost accounting).
// Malformed programs (stack under/overflow) and out-of-range packet
// references reject the packet, as the in-kernel interpreter must never
// fault.
func (p CSPFProgram) Run(packet []byte) (accept bool, executed int) {
	var stack [cspfStackDepth]uint16
	sp := 0
	push := func(v uint16) bool {
		if sp >= cspfStackDepth {
			return false
		}
		stack[sp] = v
		sp++
		return true
	}
	pop2 := func() (a, b uint16, ok bool) {
		if sp < 2 {
			return 0, 0, false
		}
		sp--
		b = stack[sp]
		sp--
		a = stack[sp]
		return a, b, true
	}
	for _, in := range p {
		executed++
		switch in.Op {
		case CSPFPushWord:
			off := int(in.Arg) * 2
			if off+2 > len(packet) {
				return false, executed
			}
			if !push(binary.BigEndian.Uint16(packet[off:])) {
				return false, executed
			}
		case CSPFPushLit:
			if !push(in.Arg) {
				return false, executed
			}
		case CSPFCor:
			a, b, ok := pop2()
			if !ok {
				return false, executed
			}
			if a == b {
				return true, executed
			}
			if !push(0) {
				return false, executed
			}
		case CSPFCand:
			a, b, ok := pop2()
			if !ok {
				return false, executed
			}
			if a != b {
				return false, executed
			}
			if !push(1) {
				return false, executed
			}
		default:
			a, b, ok := pop2()
			if !ok {
				return false, executed
			}
			var v uint16
			switch in.Op {
			case CSPFEq:
				if a == b {
					v = 1
				}
			case CSPFNeq:
				if a != b {
					v = 1
				}
			case CSPFLt:
				if a < b {
					v = 1
				}
			case CSPFLe:
				if a <= b {
					v = 1
				}
			case CSPFGt:
				if a > b {
					v = 1
				}
			case CSPFGe:
				if a >= b {
					v = 1
				}
			case CSPFAnd:
				v = a & b
			case CSPFOr:
				v = a | b
			case CSPFXor:
				v = a ^ b
			case CSPFAdd:
				v = a + b
			case CSPFSub:
				v = a - b
			default:
				return false, executed
			}
			if !push(v) {
				return false, executed
			}
		}
	}
	return sp > 0 && stack[sp-1] != 0, executed
}

// ---------------------------------------------------------------------------
// BPF: register machine
// ---------------------------------------------------------------------------

// BPFOp is a register-machine opcode (a compact subset of classic BPF
// sufficient for transport demultiplexing).
type BPFOp uint8

// BPF opcodes.
const (
	BPFLdB    BPFOp = iota // A = pkt[k] (byte)
	BPFLdH                 // A = pkt[k:k+2] (big-endian half)
	BPFLdW                 // A = pkt[k:k+4] (big-endian word)
	BPFLdBI                // A = pkt[X+k] (byte, indexed)
	BPFLdHI                // A = pkt[X+k:...] (half, indexed)
	BPFLdxMSH              // X = 4*(pkt[k] & 0x0f)  — the IP header-length idiom
	BPFJEq                 // if A == k jump jt else jf (relative, in instructions)
	BPFJGt                 // if A > k jump jt else jf
	BPFJSet                // if A & k jump jt else jf
	BPFRet                 // return k (nonzero accepts)
	BPFAndK                // A &= k
	BPFTax                 // X = A
	BPFTxa                 // A = X
)

// BPFInstr is one register-machine instruction.
type BPFInstr struct {
	Op     BPFOp
	K      uint32
	Jt, Jf uint8
}

// BPFProgram is a filter program for the register machine.
type BPFProgram []BPFInstr

// Run interprets the program over the packet, returning acceptance and the
// number of instructions executed. Out-of-range loads and running off the
// end of the program reject, as the in-kernel interpreter must never fault.
func (p BPFProgram) Run(packet []byte) (accept bool, executed int) {
	var a, x uint32
	pc := 0
	for pc < len(p) {
		in := p[pc]
		executed++
		pc++
		switch in.Op {
		case BPFLdB:
			k := int(in.K)
			if k >= len(packet) {
				return false, executed
			}
			a = uint32(packet[k])
		case BPFLdH:
			k := int(in.K)
			if k+2 > len(packet) {
				return false, executed
			}
			a = uint32(binary.BigEndian.Uint16(packet[k:]))
		case BPFLdW:
			k := int(in.K)
			if k+4 > len(packet) {
				return false, executed
			}
			a = binary.BigEndian.Uint32(packet[k:])
		case BPFLdBI:
			k := int(x) + int(in.K)
			if k >= len(packet) {
				return false, executed
			}
			a = uint32(packet[k])
		case BPFLdHI:
			k := int(x) + int(in.K)
			if k+2 > len(packet) {
				return false, executed
			}
			a = uint32(binary.BigEndian.Uint16(packet[k:]))
		case BPFLdxMSH:
			k := int(in.K)
			if k >= len(packet) {
				return false, executed
			}
			x = 4 * uint32(packet[k]&0x0f)
		case BPFJEq:
			if a == in.K {
				pc += int(in.Jt)
			} else {
				pc += int(in.Jf)
			}
		case BPFJGt:
			if a > in.K {
				pc += int(in.Jt)
			} else {
				pc += int(in.Jf)
			}
		case BPFJSet:
			if a&in.K != 0 {
				pc += int(in.Jt)
			} else {
				pc += int(in.Jf)
			}
		case BPFRet:
			return in.K != 0, executed
		case BPFAndK:
			a &= in.K
		case BPFTax:
			x = a
		case BPFTxa:
			a = x
		default:
			return false, executed
		}
	}
	return false, executed
}

// Validate checks that all jumps land within the program and that it ends
// in (or cannot run past) a return, so the kernel can refuse bad programs
// at installation time rather than at packet-arrival time.
func (p BPFProgram) Validate() error {
	for i, in := range p {
		switch in.Op {
		case BPFJEq, BPFJGt, BPFJSet:
			if i+1+int(in.Jt) >= len(p) || i+1+int(in.Jf) >= len(p) {
				return fmt.Errorf("filter: jump out of range at %d", i)
			}
		}
	}
	if len(p) == 0 {
		return fmt.Errorf("filter: empty program")
	}
	return nil
}
