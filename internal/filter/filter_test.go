package filter

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildFrame constructs a well-formed link+IPv4+transport frame matching or
// nearly matching spec, with IHL fixed at 5 (the CSPF-compatible case).
func buildFrame(spec Spec, srcIP, dstIP [4]byte, proto uint8, srcPort, dstPort uint16, fragOff uint16) []byte {
	f := make([]byte, spec.LinkHdrLen+20+8)
	binary.BigEndian.PutUint16(f[spec.LinkHdrLen-2:], 0x0800)
	ip := f[spec.LinkHdrLen:]
	ip[0] = 0x45
	binary.BigEndian.PutUint16(ip[6:], fragOff&0x1fff)
	ip[9] = proto
	copy(ip[12:16], srcIP[:])
	copy(ip[16:20], dstIP[:])
	binary.BigEndian.PutUint16(ip[20:], srcPort)
	binary.BigEndian.PutUint16(ip[22:], dstPort)
	return f
}

var testSpec = Spec{
	LinkHdrLen: 14,
	Proto:      6,
	LocalIP:    [4]byte{10, 0, 0, 2},
	LocalPort:  1234,
	RemoteIP:   [4]byte{10, 0, 0, 1},
	RemotePort: 80,
}

func TestMatchAccepts(t *testing.T) {
	f := buildFrame(testSpec, testSpec.RemoteIP, testSpec.LocalIP, 6, 80, 1234, 0)
	if !testSpec.Match(f) {
		t.Fatal("native match rejected a matching frame")
	}
}

func TestMatchRejections(t *testing.T) {
	cases := map[string][]byte{
		"wrong ethertype": func() []byte {
			f := buildFrame(testSpec, testSpec.RemoteIP, testSpec.LocalIP, 6, 80, 1234, 0)
			binary.BigEndian.PutUint16(f[12:], 0x0806)
			return f
		}(),
		"wrong proto":    buildFrame(testSpec, testSpec.RemoteIP, testSpec.LocalIP, 17, 80, 1234, 0),
		"wrong dst ip":   buildFrame(testSpec, testSpec.RemoteIP, [4]byte{10, 0, 0, 9}, 6, 80, 1234, 0),
		"wrong src ip":   buildFrame(testSpec, [4]byte{10, 0, 0, 9}, testSpec.LocalIP, 6, 80, 1234, 0),
		"wrong dst port": buildFrame(testSpec, testSpec.RemoteIP, testSpec.LocalIP, 6, 80, 999, 0),
		"wrong src port": buildFrame(testSpec, testSpec.RemoteIP, testSpec.LocalIP, 6, 99, 1234, 0),
		"fragment":       buildFrame(testSpec, testSpec.RemoteIP, testSpec.LocalIP, 6, 80, 1234, 100),
		"short":          make([]byte, 20),
		"empty":          nil,
	}
	for name, f := range cases {
		if testSpec.Match(f) {
			t.Errorf("%s: native match accepted", name)
		}
	}
}

func TestWildcardSpec(t *testing.T) {
	listen := Spec{LinkHdrLen: 14, Proto: 6, LocalIP: [4]byte{10, 0, 0, 2}, LocalPort: 21}
	f := buildFrame(listen, [4]byte{1, 2, 3, 4}, listen.LocalIP, 6, 5555, 21, 0)
	if !listen.Match(f) {
		t.Fatal("wildcard spec rejected matching frame")
	}
	for _, prog := range []interface {
		Run([]byte) (bool, int)
	}{listen.CompileBPF(), listen.CompileCSPF()} {
		if ok, _ := prog.Run(f); !ok {
			t.Fatalf("%T rejected frame accepted by wildcard native match", prog)
		}
	}
}

func TestCompiledProgramsValidate(t *testing.T) {
	if err := testSpec.CompileBPF().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (BPFProgram{}).Validate(); err == nil {
		t.Fatal("empty program should not validate")
	}
	bad := BPFProgram{{Op: BPFJEq, Jt: 5, Jf: 0}, {Op: BPFRet, K: 1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range jump should not validate")
	}
}

func TestVariableIHLBPFOnly(t *testing.T) {
	// Build a frame with IHL=6 (one option word); BPF and native handle it,
	// CSPF (documented limitation) does not.
	spec := testSpec
	f := make([]byte, spec.LinkHdrLen+24+8)
	binary.BigEndian.PutUint16(f[spec.LinkHdrLen-2:], 0x0800)
	ip := f[spec.LinkHdrLen:]
	ip[0] = 0x46
	ip[9] = 6
	copy(ip[12:16], spec.RemoteIP[:])
	copy(ip[16:20], spec.LocalIP[:])
	binary.BigEndian.PutUint16(ip[24:], 80)
	binary.BigEndian.PutUint16(ip[26:], 1234)
	if !spec.Match(f) {
		t.Fatal("native match should handle IHL=6")
	}
	if ok, _ := spec.CompileBPF().Run(f); !ok {
		t.Fatal("BPF (LdxMSH) should handle IHL=6")
	}
}

// Property: on well-formed IHL=5 frames, native, BPF and CSPF agree.
func TestArchitecturesAgreeProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := Spec{
			LinkHdrLen: []int{14, 16}[rng.Intn(2)],
			Proto:      []uint8{6, 17}[rng.Intn(2)],
			LocalIP:    [4]byte{10, 0, 0, byte(rng.Intn(4))},
			LocalPort:  uint16(rng.Intn(4) + 1),
		}
		if rng.Intn(2) == 0 {
			spec.RemoteIP = [4]byte{10, 0, 0, byte(rng.Intn(4))}
			spec.RemotePort = uint16(rng.Intn(4) + 1)
		}
		bpf := spec.CompileBPF()
		cspf := spec.CompileCSPF()
		if err := bpf.Validate(); err != nil {
			return false
		}
		// Draw fields from small ranges so matches actually occur.
		for i := 0; i < 40; i++ {
			f := buildFrame(spec,
				[4]byte{10, 0, 0, byte(rng.Intn(4))},
				[4]byte{10, 0, 0, byte(rng.Intn(4))},
				[]uint8{6, 17}[rng.Intn(2)],
				uint16(rng.Intn(4)+1), uint16(rng.Intn(4)+1),
				uint16(rng.Intn(2)*77))
			want := spec.Match(f)
			if got, _ := bpf.Run(f); got != want {
				return false
			}
			if got, _ := cspf.Run(f); got != want {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the interpreters never panic on arbitrary bytes, and BPF agrees
// with native on arbitrary garbage (both must reject or accept together for
// IHL>=5 well-formed-enough frames; for garbage both reject).
func TestRobustnessOnGarbage(t *testing.T) {
	bpf := testSpec.CompileBPF()
	cspf := testSpec.CompileCSPF()
	if err := quick.Check(func(data []byte) bool {
		a, _ := bpf.Run(data)
		b, _ := cspf.Run(data)
		c := testSpec.Match(data)
		// On arbitrary garbage the odds of a match are negligible but not
		// impossible; require only no-panic and BPF==native.
		_ = b
		return a == c
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInstructionCounts(t *testing.T) {
	f := buildFrame(testSpec, testSpec.RemoteIP, testSpec.LocalIP, 6, 80, 1234, 0)
	_, nb := testSpec.CompileBPF().Run(f)
	_, nc := testSpec.CompileCSPF().Run(f)
	if nb == 0 || nc == 0 {
		t.Fatal("instruction counts should be nonzero")
	}
	// The stack architecture takes materially more interpreted operations
	// for the same predicate — the paper's point about CSPF being memory
	// intensive relative to the RISC-friendly BPF design.
	if nc <= nb {
		t.Fatalf("CSPF executed %d ops vs BPF %d; expected CSPF > BPF", nc, nb)
	}
}

func TestCSPFEarlyRejectCheapens(t *testing.T) {
	good := buildFrame(testSpec, testSpec.RemoteIP, testSpec.LocalIP, 6, 80, 1234, 0)
	bad := buildFrame(testSpec, testSpec.RemoteIP, testSpec.LocalIP, 6, 80, 1234, 0)
	binary.BigEndian.PutUint16(bad[12:], 0x0806) // wrong ethertype, first test
	_, nGood := testSpec.CompileCSPF().Run(good)
	_, nBad := testSpec.CompileCSPF().Run(bad)
	if nBad >= nGood {
		t.Fatalf("early reject executed %d ops, full accept %d; want reject cheaper", nBad, nGood)
	}
}

func TestCSPFStackOps(t *testing.T) {
	// Direct unit tests of the stack machine beyond the compiler's idioms.
	pkt := []byte{0x00, 0x05, 0x00, 0x03}
	run := func(p CSPFProgram) bool { ok, _ := p.Run(pkt); return ok }
	if !run(CSPFProgram{
		{Op: CSPFPushWord, Arg: 0}, {Op: CSPFPushWord, Arg: 1}, {Op: CSPFAdd},
		{Op: CSPFPushLit, Arg: 8}, {Op: CSPFEq},
	}) {
		t.Fatal("5+3 != 8 per CSPF")
	}
	if !run(CSPFProgram{
		{Op: CSPFPushWord, Arg: 0}, {Op: CSPFPushLit, Arg: 3}, {Op: CSPFSub},
		{Op: CSPFPushLit, Arg: 2}, {Op: CSPFEq},
	}) {
		t.Fatal("5-3 != 2 per CSPF")
	}
	if !run(CSPFProgram{
		{Op: CSPFPushLit, Arg: 0xf0}, {Op: CSPFPushLit, Arg: 0x1f}, {Op: CSPFXor},
		{Op: CSPFPushLit, Arg: 0xef}, {Op: CSPFEq},
	}) {
		t.Fatal("xor broken")
	}
	if run(CSPFProgram{{Op: CSPFPushLit, Arg: 1}, {Op: CSPFEq}}) {
		t.Fatal("stack underflow should reject")
	}
	if run(CSPFProgram{{Op: CSPFPushWord, Arg: 100}}) {
		t.Fatal("out-of-range word load should reject")
	}
	// Comparison operators.
	cmp := func(op CSPFOp, a, b uint16) bool {
		return run(CSPFProgram{{Op: CSPFPushLit, Arg: a}, {Op: CSPFPushLit, Arg: b}, {Op: op}})
	}
	if !cmp(CSPFLt, 1, 2) || cmp(CSPFLt, 2, 2) || !cmp(CSPFLe, 2, 2) ||
		!cmp(CSPFGt, 3, 2) || cmp(CSPFGt, 2, 2) || !cmp(CSPFGe, 2, 2) ||
		!cmp(CSPFNeq, 1, 2) || cmp(CSPFNeq, 2, 2) || !cmp(CSPFOr, 0, 2) {
		t.Fatal("comparison operator broken")
	}
	// COR short-circuit accept.
	if ok, n := (CSPFProgram{
		{Op: CSPFPushLit, Arg: 7}, {Op: CSPFPushLit, Arg: 7}, {Op: CSPFCor},
		{Op: CSPFPushLit, Arg: 0},
	}).Run(pkt); !ok || n != 3 {
		t.Fatalf("COR short-circuit: ok=%v n=%d", ok, n)
	}
	// Stack overflow rejects rather than panicking.
	var deep CSPFProgram
	for i := 0; i < 64; i++ {
		deep = append(deep, CSPFInstr{Op: CSPFPushLit, Arg: 1})
	}
	if ok, _ := deep.Run(pkt); ok {
		t.Fatal("stack overflow should reject")
	}
}

func TestBPFOps(t *testing.T) {
	pkt := []byte{0x12, 0x34, 0x56, 0x78, 0x45}
	run := func(p BPFProgram) bool { ok, _ := p.Run(pkt); return ok }
	if !run(BPFProgram{{Op: BPFLdW, K: 0}, {Op: BPFJEq, K: 0x12345678, Jt: 0, Jf: 1}, {Op: BPFRet, K: 1}, {Op: BPFRet, K: 0}}) {
		t.Fatal("LdW/JEq broken")
	}
	if !run(BPFProgram{{Op: BPFLdB, K: 4}, {Op: BPFAndK, K: 0x0f}, {Op: BPFJEq, K: 5, Jt: 0, Jf: 1}, {Op: BPFRet, K: 1}, {Op: BPFRet, K: 0}}) {
		t.Fatal("LdB/AndK broken")
	}
	if !run(BPFProgram{{Op: BPFLdxMSH, K: 4}, {Op: BPFTxa}, {Op: BPFJEq, K: 20, Jt: 0, Jf: 1}, {Op: BPFRet, K: 1}, {Op: BPFRet, K: 0}}) {
		t.Fatal("LdxMSH/Txa broken")
	}
	// Out-of-range indexed load must reject, not fault.
	if run(BPFProgram{{Op: BPFLdB, K: 0}, {Op: BPFTax}, {Op: BPFLdBI, K: 0x22}, {Op: BPFRet, K: 1}}) {
		t.Fatal("out-of-range indexed load should reject")
	}
}

func TestBPFIndexedLoad(t *testing.T) {
	pkt := make([]byte, 64)
	pkt[0] = 3
	pkt[3+2] = 0xaa
	p := BPFProgram{
		{Op: BPFLdB, K: 0},
		{Op: BPFTax},
		{Op: BPFLdBI, K: 2}, // pkt[X+2] = pkt[5]
		{Op: BPFJEq, K: 0xaa, Jt: 0, Jf: 1},
		{Op: BPFRet, K: 1},
		{Op: BPFRet, K: 0},
	}
	if ok, _ := p.Run(pkt); !ok {
		t.Fatal("indexed byte load broken")
	}
	// Out-of-range indexed load rejects.
	pkt[0] = 200
	if ok, _ := p.Run(pkt[:32]); ok {
		t.Fatal("out-of-range indexed load should reject")
	}
}

func TestBPFRunOffEndRejects(t *testing.T) {
	p := BPFProgram{{Op: BPFLdB, K: 0}}
	if ok, _ := p.Run([]byte{1}); ok {
		t.Fatal("program without RET should reject")
	}
}
