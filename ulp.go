// Package ulp is a faithful reproduction of "Implementing Network Protocols
// at User Level" (Thekkath, Nguyen, Moy, Lazowska; SIGCOMM 1993) as a
// deterministic discrete-event simulation.
//
// It builds simulated 1993 workstations (DECstation 5000/200-class hosts)
// attached to a 10 Mb/s Ethernet and/or a 100 Mb/s DEC SRC AN1 network, and
// runs a complete, byte-exact TCP/IP/ARP protocol suite under the paper's
// three protocol organizations:
//
//   - OrgUserLib — the paper's contribution: a protocol library linked into
//     the application, a trusted registry server for connection setup, and
//     an in-kernel network I/O module providing protected, demultiplexed
//     network access (hardware BQI demux on the AN1, software filters on
//     Ethernet).
//   - OrgInKernel — the Ultrix 4.2A style monolithic in-kernel stack.
//   - OrgSingleServer — the Mach 3.0 + UX style single-server stack with a
//     mapped device.
//
// The identical protocol engine runs under all three; measured differences
// are purely structural, which is the paper's methodology. The experiments
// package and cmd/ulbench regenerate every table of the paper's evaluation.
//
// # Quick start
//
//	w := ulp.NewWorld(ulp.Config{Org: ulp.OrgUserLib, Net: ulp.Ethernet})
//	server, client := w.Node(0).App("server"), w.Node(1).App("client")
//	server.Go("srv", func(t *kern.Thread) {
//	    l, _ := server.Stack.Listen(t, 80, stacks.Options{})
//	    c, _ := l.Accept(t)
//	    buf := make([]byte, 4096)
//	    n, _ := c.Read(t, buf)
//	    c.Write(t, buf[:n]) // echo
//	})
//	client.Go("cli", func(t *kern.Thread) {
//	    c, _ := client.Stack.Connect(t, w.Endpoint(0, 80), stacks.Options{})
//	    c.Write(t, []byte("hello"))
//	    ...
//	})
//	w.Run(2 * time.Second)
package ulp

import (
	"fmt"
	"time"

	"ulp/internal/chaos"
	"ulp/internal/checksum"
	"ulp/internal/conform"
	"ulp/internal/core"
	"ulp/internal/costs"
	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/netdev"
	"ulp/internal/netio"
	"ulp/internal/pkt"
	"ulp/internal/registry"
	"ulp/internal/sim"
	"ulp/internal/stacks"
	"ulp/internal/stats"
	"ulp/internal/tcp"
	"ulp/internal/trace"
	"ulp/internal/wire"
)

// Org selects a protocol organization (Figure 1 of the paper).
type Org int

// Organizations.
const (
	OrgUserLib Org = iota
	OrgInKernel
	OrgSingleServer
)

// String names the organization as the experiments print it.
func (o Org) String() string {
	switch o {
	case OrgUserLib:
		return "userlib"
	case OrgInKernel:
		return "inkernel"
	case OrgSingleServer:
		return "singleserver"
	}
	return fmt.Sprintf("Org(%d)", int(o))
}

// Net selects the simulated network.
type Net int

// Networks.
const (
	// Ethernet is the 10 Mb/s shared segment with the LANCE PIO interface.
	Ethernet Net = iota
	// AN1 is the 100 Mb/s switched segment, driver-limited to 1500-byte
	// encapsulation as in the paper.
	AN1
	// AN1Jumbo lifts the encapsulation limit to the hardware's 64 KB
	// frames (the paper notes the limitation; this is the ablation).
	AN1Jumbo
)

// String names the network.
func (n Net) String() string {
	switch n {
	case Ethernet:
		return "ethernet"
	case AN1:
		return "an1"
	case AN1Jumbo:
		return "an1-64k"
	}
	return fmt.Sprintf("Net(%d)", int(n))
}

// Config describes a world to build.
type Config struct {
	// Org is the protocol organization instantiated on every host.
	Org Org
	// Net is the network type.
	Net Net
	// Hosts is the number of workstations (default 2).
	Hosts int
	// Faults optionally injects loss/duplication/corruption/reordering.
	Faults *wire.Faults
	// Chaos optionally installs a full-system fault plan: wire faults,
	// registry control-plane faults, and scheduled application crashes.
	// Chaos's wire faults apply only when Faults is nil.
	Chaos *chaos.FaultPlan
	// Conditions optionally installs a time-scripted link-condition plan
	// (bursty loss, asymmetric paths, partitions, flaps, bufferbloat) on
	// the segment, layered after Faults. Chaos.Partitions merge into it.
	Conditions *wire.LinkConditions
	// Costs overrides the calibrated cost model (ablations).
	Costs *costs.Model

	// Switch builds the segment as a store-and-forward learning switch
	// instead of a single medium — required for many-host worlds where
	// disjoint flows must not contend. Ethernet ignores it (the paper's
	// Ethernet is a shared wire by definition).
	Switch *wire.SwitchConfig
	// TimerWheel switches the user-level organization's TCP timer backend
	// (registry and every library) from per-connection tick scans to
	// timing wheels; O(1) per tick instead of O(connections). Virtual-time
	// results change only in worlds with >1 connection per shell, where
	// tick order was never a documented property.
	TimerWheel bool
	// EphemeralLo/Hi widen the registries' ephemeral port range beyond
	// the classic [1024,5000) — churn worlds recycle far more ports.
	// Both zero = default range.
	EphemeralLo, EphemeralHi uint16

	// RegistryShards, when >= 2, shards each host's registry control plane
	// into that many federated registry servers, each pinned to its own CPU
	// and owning a static slice of the port space, fronted by a stateless
	// metaregistry index in every library. 0 or 1 keeps the classic single
	// registry — bit-identical to worlds built before federation existed.
	// Only OrgUserLib worlds use it.
	RegistryShards int
	// AdmissionQuota bounds outstanding connection setups per application
	// domain in sharded worlds (0 = registry.DefaultAdmissionQuota).
	AdmissionQuota int

	// ZeroCopyRx switches every module's receive channels to by-reference
	// delivery: matched frames are handed to the library as refcounted
	// buffer references plus a fixed-size descriptor in the shared region,
	// instead of modeling a per-byte kernel→region copy, and doorbell
	// notifications are batched under DoorbellBatch. Opt-in like Switch
	// and TimerWheel: legacy worlds keep the classic copy cost profile.
	ZeroCopyRx bool
	// DoorbellBatch bounds doorbell coalescing in zero-copy mode: at most
	// one notification per this many posted descriptors while the library
	// lags. Zero means the default (8).
	DoorbellBatch int
}

// World is a built simulation: a network segment plus hosts running the
// selected organization.
type World struct {
	Sim   *sim.Sim
	Seg   *wire.Segment
	nodes []*Node
	cfg   Config

	bus *trace.Bus

	// Process-global counter baselines captured at construction, so a
	// world's stats report covers only its own activity even when several
	// worlds share the process (tests, ulbench sweeps).
	pktBase      pkt.PoolCounters
	checksumBase int64
}

// Node is one workstation.
type Node struct {
	world *World
	Index int
	Host  *kern.Host
	Mod   *netio.Module
	IP    ipv4.Addr

	// Exactly one of these is set, by organization.
	Registry *registry.Server
	InKernel *stacks.InKernel
	UXServer *stacks.SingleServer

	// Fed is set (alongside a nil Registry) when the world shards the
	// control plane (Config.RegistryShards >= 2).
	Fed *registry.Federation
}

// App is one application on a node: an address space plus the stack handle
// it uses (its own linked library under OrgUserLib; the shared kernel or
// server stack otherwise).
type App struct {
	Node  *Node
	Dom   *kern.Domain
	Stack stacks.Stack
	// Lib is non-nil under OrgUserLib, exposing library-specific calls
	// (Exit/inheritance).
	Lib *core.Library
}

// buildConditions merges the explicit link-condition plan with the chaos
// plan's scripted partitions (host indices become station addresses). It
// returns nil when nothing is active, so condition-free worlds keep a nil
// conditions layer and stay bit-identical to older builds.
func buildConditions(cfg Config) *wire.LinkConditions {
	var lc *wire.LinkConditions
	if cfg.Conditions != nil {
		cp := *cfg.Conditions
		lc = &cp
	}
	if cfg.Chaos != nil && len(cfg.Chaos.Partitions) > 0 {
		if lc == nil {
			lc = &wire.LinkConditions{Seed: cfg.Chaos.Seed}
		}
		for _, p := range cfg.Chaos.Partitions {
			pw := wire.PartitionWindow{Window: wire.Window{From: p.At}}
			if p.HealAfter > 0 {
				pw.Until = p.At + p.HealAfter
			}
			for _, h := range p.Hosts {
				pw.Hosts = append(pw.Hosts, link.MakeAddr(h+1))
			}
			lc.Partitions = append(lc.Partitions, pw)
		}
	}
	if !lc.Active() {
		return nil
	}
	return lc
}

// NewWorld builds a world.
func NewWorld(cfg Config) *World {
	if cfg.Hosts == 0 {
		cfg.Hosts = 2
	}
	s := sim.New()
	var wcfg wire.Config
	switch cfg.Net {
	case Ethernet:
		wcfg = wire.EthernetConfig()
	default:
		wcfg = wire.AN1Config()
	}
	var seg *wire.Segment
	if cfg.Switch != nil && !wcfg.Shared {
		seg = wire.NewSwitched(s, wcfg, *cfg.Switch)
	} else {
		seg = wire.New(s, wcfg)
	}
	if cfg.Faults != nil {
		seg.SetFaults(*cfg.Faults)
	} else if cfg.Chaos != nil {
		seg.SetFaults(cfg.Chaos.WireFaults())
	}
	if lc := buildConditions(cfg); lc != nil {
		seg.SetConditions(lc)
	}
	model := costs.Default()
	if cfg.Costs != nil {
		model = *cfg.Costs
	}
	w := &World{Sim: s, Seg: seg, cfg: cfg}
	for i := 0; i < cfg.Hosts; i++ {
		h := kern.NewHost(s, fmt.Sprintf("h%d", i), model)
		addr := link.MakeAddr(i + 1)
		var dev netdev.Device
		switch cfg.Net {
		case Ethernet:
			dev = netdev.NewLance(h, seg, addr)
		case AN1:
			dev = netdev.NewAN1(h, seg, addr, link.AN1EncapMTU)
		case AN1Jumbo:
			dev = netdev.NewAN1(h, seg, addr, link.AN1MaxMTU)
		}
		mod := netio.New(h, dev)
		mod.ZeroCopyRx = cfg.ZeroCopyRx
		mod.DoorbellBatch = cfg.DoorbellBatch
		// The third octet carries the high host bits, so worlds scale past
		// 254 hosts; for small worlds this is the classic 10.0.0.x.
		n := &Node{world: w, Index: i, Host: h, Mod: mod,
			IP: ipv4.Addr{10, 0, byte((i + 1) >> 8), byte(i + 1)}}
		switch cfg.Org {
		case OrgUserLib:
			if cfg.RegistryShards >= 2 {
				n.Fed = registry.NewFederation(s, mod, n.IP, registry.FederationConfig{
					Shards: cfg.RegistryShards, Quota: cfg.AdmissionQuota})
				if cfg.TimerWheel {
					n.Fed.EnableTimerWheel()
				}
				if cfg.EphemeralHi != 0 {
					n.Fed.SetEphemeralRange(cfg.EphemeralLo, cfg.EphemeralHi)
				}
				if cfg.Chaos != nil {
					n.Fed.SetControlFaults(chaos.NewInjector(
						cfg.Chaos.Seed+uint64(i), cfg.Chaos.Control))
					for _, sc := range cfg.Chaos.ShardCrashes {
						if sc.Host != i {
							continue
						}
						fed, shard := n.Fed, sc.Shard
						s.After(sim.Dur(sc.At), func() { fed.CrashShard(shard) })
						if sc.RestartAfter > 0 {
							s.After(sim.Dur(sc.At+sc.RestartAfter),
								func() { fed.RestartShard(shard) })
						}
					}
				}
				break
			}
			n.Registry = registry.New(s, mod, n.IP)
			if cfg.TimerWheel {
				n.Registry.EnableTimerWheel()
			}
			if cfg.EphemeralHi != 0 {
				n.Registry.SetEphemeralRange(cfg.EphemeralLo, cfg.EphemeralHi)
			}
			if cfg.Chaos != nil {
				n.Registry.SetControlFaults(chaos.NewInjector(
					cfg.Chaos.Seed+uint64(i), cfg.Chaos.Control))
				for _, rc := range cfg.Chaos.RegistryCrashes {
					if rc.Host != i {
						continue
					}
					nn := n
					s.After(sim.Dur(rc.At), func() { nn.Registry.Crash() })
					if rc.RestartAfter > 0 {
						s.After(sim.Dur(rc.At+rc.RestartAfter), func() { nn.RestartRegistry() })
					}
				}
			}
		case OrgInKernel:
			n.InKernel = stacks.NewInKernel(s, mod, n.IP)
		case OrgSingleServer:
			n.UXServer = stacks.NewSingleServer(s, mod, n.IP)
		}
		w.nodes = append(w.nodes, n)
	}
	w.pktBase = pkt.Counters()
	w.checksumBase = checksum.BytesSummed()
	return w
}

// EnableTrace attaches a trace bus to every layer of the world — wire,
// devices, network I/O modules, registries, TCP connections (via the
// registry attach path) and the packet allocator — and returns it.
// Timestamps are virtual time. Idempotent; call before running scenarios so
// connection labels are assigned at setup. Tracing never consumes virtual
// time, sequence numbers or randomness: a traced run is bit-identical to an
// untraced one.
func (w *World) EnableTrace() *trace.Bus {
	if w.bus != nil {
		return w.bus
	}
	bus := trace.NewBus(func() time.Duration { return time.Duration(w.Sim.Now()) })
	w.bus = bus
	w.Seg.Bus = bus
	pkt.SetTraceBus(bus)
	for _, n := range w.nodes {
		n.Mod.Bus = bus
		n.Mod.Device().SetTrace(bus)
		if n.Registry != nil {
			n.Registry.SetTrace(bus)
		}
		if n.Fed != nil {
			n.Fed.SetTrace(bus)
		}
	}
	return bus
}

// Bus returns the world's trace bus, or nil if EnableTrace was never called.
func (w *World) Bus() *trace.Bus { return w.bus }

// EnableConformance attaches an RFC 793 conformance checker to the world's
// trace bus (enabling tracing first if needed) and returns it. Every TCP
// state transition, retransmission, RTO update and persist event on any host
// is checked live against the legal transition relation and timer rules;
// call Violations on the returned checker after the run. Like tracing, the
// checker is a pure observer: a checked run is bit-identical to an unchecked
// one.
func (w *World) EnableConformance() *conform.Checker {
	bus := w.EnableTrace()
	ck := conform.New(conform.Config{})
	ck.Attach(bus)
	return ck
}

// StatsRegistry builds a stats registry over every layer's counters. The
// returned registry polls live state: snapshot it whenever a breakdown is
// wanted. Per-process counters (packet pool, checksum) are reported relative
// to the world's construction baseline.
func (w *World) StatsRegistry() *stats.Registry {
	r := stats.New()
	r.RegisterFunc("wire", func(emit func(string, int64)) {
		sent, dropped, corrupted, duplicated, reordered, bytes := w.Seg.Stats()
		emit("frames_sent", int64(sent))
		emit("frames_dropped", int64(dropped))
		emit("frames_corrupted", int64(corrupted))
		emit("frames_duplicated", int64(duplicated))
		emit("frames_reordered", int64(reordered))
		emit("bytes_sent", bytes)
	})
	for _, n := range w.nodes {
		n := n
		r.RegisterFunc(fmt.Sprintf("netdev.h%d", n.Index), func(emit func(string, int64)) {
			st := n.Mod.Device().Stats()
			emit("tx_frames", int64(st.TxFrames))
			emit("rx_frames", int64(st.RxFrames))
			emit("rx_dropped", int64(st.RxDropped))
			emit("tx_bytes", st.TxBytes)
			emit("rx_bytes", st.RxBytes)
		})
		r.RegisterFunc(fmt.Sprintf("netio.h%d", n.Index), func(emit func(string, int64)) {
			emit("send_ok", int64(n.Mod.SendOK))
			emit("send_rejected", int64(n.Mod.SendRejected))
			emit("demux_matched", int64(n.Mod.DemuxMatched))
			emit("demux_default", int64(n.Mod.DemuxDefault))
			emit("rx_dropped", int64(n.Mod.RxDropped))
			emit("delivered", int64(n.Mod.DeliveredTotal))
			emit("notifications", int64(n.Mod.NotificationsTotal))
			emit("copied_bytes", n.Mod.CopiedBytes)
			emit("referenced_bytes", n.Mod.ReferencedBytes)
			emit("delivered_by_ref", int64(n.Mod.DeliveredByRef))
			emit("ring_high_water", int64(n.Mod.RingHighWater))
			emit("quarantine_drops", int64(n.Mod.QuarantineDrops))
			// Per-channel breakdown for live channels, keyed by capability
			// id: which endpoint's ring copied, referenced, or dropped.
			for _, cs := range n.Mod.ChannelStats() {
				pfx := fmt.Sprintf("ch%d.", cs.ID)
				emit(pfx+"delivered", int64(cs.Delivered))
				emit(pfx+"delivered_by_ref", int64(cs.DeliveredByRef))
				emit(pfx+"copied_bytes", cs.CopiedBytes)
				emit(pfx+"referenced_bytes", cs.ReferencedBytes)
				emit(pfx+"dropped", int64(cs.Dropped))
				emit(pfx+"high_water", int64(cs.HighWater))
				emit(pfx+"notifications", int64(cs.Notifications))
			}
		})
		if n.Registry != nil {
			// The closure reads n.Registry at snapshot time, so it tracks
			// the live incarnation across restarts.
			r.RegisterFunc(fmt.Sprintf("registry.h%d", n.Index), func(emit func(string, int64)) {
				reg := n.Registry
				emit("epoch", int64(reg.Epoch()))
				emit("ports_in_use", int64(reg.PortsInUse()))
				emit("owned_conns", int64(reg.OwnedConns()))
				emit("transferred", int64(reg.TransferredConns()))
				emit("listeners", int64(reg.ListenerCount()))
				emit("syn_dropped", int64(reg.SynDrops()))
				emit("dedup_hits", int64(reg.DedupHits()))
				emit("reregistered", int64(reg.ReRegistered()))
				emit("rebuilt_endpoints", int64(reg.RebuiltEndpoints()))
			})
		}
		if n.Fed != nil {
			r.RegisterFunc(fmt.Sprintf("registry.h%d", n.Index), func(emit func(string, int64)) {
				fed := n.Fed
				emit("shards", int64(fed.Shards()))
				emit("ports_in_use", int64(fed.PortsInUse()))
				emit("owned_conns", int64(fed.OwnedConns()))
				emit("transferred", int64(fed.TransferredConns()))
				emit("dedup_hits", int64(fed.DedupHits()))
				emit("reregistered", int64(fed.ReRegistered()))
				emit("admission_denied", int64(fed.AdmissionDenied()))
				for i := 0; i < fed.Shards(); i++ {
					sh := fed.Shard(i)
					pfx := fmt.Sprintf("shard%d.", i)
					live := int64(0)
					if fed.Live(i) {
						live = 1
					}
					emit(pfx+"live", live)
					emit(pfx+"epoch", int64(sh.Epoch()))
					emit(pfx+"syn_dropped", int64(sh.SynDrops()))
					emit(pfx+"rebuilt_endpoints", int64(sh.RebuiltEndpoints()))
				}
			})
		}
	}
	r.RegisterFunc("pkt", func(emit func(string, int64)) {
		c := pkt.Counters()
		emit("gets", c.Gets-w.pktBase.Gets)
		emit("puts", c.Puts-w.pktBase.Puts)
		emit("recycled", c.Recycled-w.pktBase.Recycled)
		emit("heap_allocs", c.HeapAllocs-w.pktBase.HeapAllocs)
		emit("outstanding", (c.Gets-w.pktBase.Gets)-(c.Puts-w.pktBase.Puts))
	})
	r.RegisterFunc("checksum", func(emit func(string, int64)) {
		emit("bytes_summed", checksum.BytesSummed()-w.checksumBase)
	})
	r.RegisterFunc("sim", func(emit func(string, int64)) {
		fired, cancelled, maxHeap := w.Sim.Counters()
		emit("events_fired", fired)
		emit("timers_cancelled", cancelled)
		emit("max_heap", int64(maxHeap))
	})
	return r
}

// StatsReport renders the full per-layer counter breakdown.
func (w *World) StatsReport() string { return w.StatsRegistry().Render() }

// Node returns host i.
func (w *World) Node(i int) *Node { return w.nodes[i] }

// Nodes returns the host count.
func (w *World) Nodes() int { return len(w.nodes) }

// Endpoint names a TCP endpoint on host i.
func (w *World) Endpoint(i int, port uint16) tcp.Endpoint {
	return tcp.Endpoint{IP: w.nodes[i].IP, Port: port}
}

// Run advances virtual time by d (0 = until no events remain, which with
// timer threads running means forever — always pass a budget).
func (w *World) Run(d time.Duration) time.Duration {
	return time.Duration(w.Sim.Run(d))
}

// RunUntil advances until pred holds or the budget expires.
func (w *World) RunUntil(d time.Duration, pred func() bool) time.Duration {
	return time.Duration(w.Sim.RunUntil(d, pred))
}

// Now returns current virtual time.
func (w *World) Now() time.Duration { return time.Duration(w.Sim.Now()) }

// TraceFrames installs a read-only observer for every frame transmitted on
// the segment (protocol tracing; see cmd/ultrace).
func (w *World) TraceFrames(fn func(at time.Duration, frame *pkt.Buf)) {
	w.Seg.TraceFrame = func(b *pkt.Buf, at sim.Time) {
		fn(time.Duration(at), b)
	}
}

// App creates an application on the node. If the world's fault plan
// schedules a crash matching this node and name, it is armed here.
func (n *Node) App(name string) *App {
	dom := n.Host.NewDomain(name, false)
	a := &App{Node: n, Dom: dom}
	switch {
	case n.Fed != nil:
		a.Lib = core.NewLibraryFed(n.world.Sim, dom, n.Fed)
		if n.world.cfg.TimerWheel {
			a.Lib.EnableTimerWheel()
		}
		a.Stack = a.Lib
	case n.Registry != nil:
		a.Lib = core.NewLibrary(n.world.Sim, dom, n.Registry)
		if n.world.cfg.TimerWheel {
			a.Lib.EnableTimerWheel()
		}
		a.Stack = a.Lib
	case n.InKernel != nil:
		a.Stack = n.InKernel
	case n.UXServer != nil:
		a.Stack = n.UXServer
	}
	if plan := n.world.cfg.Chaos; plan != nil {
		for _, cp := range plan.Crashes {
			if cp.Host == n.Index && (cp.App == "" || cp.App == name) {
				n.world.Sim.After(sim.Dur(cp.At), a.Crash)
			}
		}
	}
	return a
}

// Crash terminates the application abruptly: every thread is killed with no
// exit path run. Recovery is entirely the system's problem — the registry
// reclaims ports and connections and resets peers, and the network I/O
// module revokes capabilities and unpins shared regions.
func (a *App) Crash() { a.Dom.Kill() }

// Go runs fn as an application thread.
func (a *App) Go(name string, fn func(t *kern.Thread)) *kern.Thread {
	return a.Dom.Spawn(name, fn)
}

// GoAfter runs fn as an application thread after a delay.
func (a *App) GoAfter(d time.Duration, name string, fn func(t *kern.Thread)) *kern.Thread {
	return a.Dom.SpawnAfter(d, name, fn)
}

// RestartRegistry boots a fresh registry over the node's network I/O
// module after a crash (see registry.Restart: the service port is reused
// and state is rebuilt from the module's installed templates). Libraries
// created before the crash keep working — their handle resolves to the
// same service port and interface wiring.
func (n *Node) RestartRegistry() *registry.Server {
	n.Registry = registry.Restart(n.world.Sim, n.Mod, n.IP, n.Registry)
	return n.Registry
}

// UDP returns the node's datagram service (monolithic organizations).
func (n *Node) UDP() *stacks.UDPHost {
	switch {
	case n.InKernel != nil:
		return n.InKernel.UDP()
	case n.UXServer != nil:
		return n.UXServer.UDP()
	}
	return nil
}
