module ulp

go 1.22
