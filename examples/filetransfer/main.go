// Filetransfer: the paper's throughput-intensive workload — a bulk transfer
// of a 1 MB "file" — run under all three protocol organizations on both
// networks, with end-to-end integrity verification. This is Table 2's
// scenario as an application.
//
//	go run ./examples/filetransfer
//	go run ./examples/filetransfer -stats   # per-layer counter breakdown per run
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"time"

	"ulp"
	"ulp/internal/kern"
	"ulp/internal/stacks"
)

var statsFlag = flag.Bool("stats", false, "print the per-layer stats breakdown after each transfer")

const fileSize = 1 << 20

// makeFile builds a deterministic pseudo-file.
func makeFile() []byte {
	f := make([]byte, fileSize)
	for i := range f {
		f[i] = byte(i*2654435761 + i>>9)
	}
	return f
}

func transfer(org ulp.Org, net ulp.Net) (mbps float64, d time.Duration, ok bool) {
	w := ulp.NewWorld(ulp.Config{Org: org, Net: net})
	file := makeFile()
	want := fnv.New64a()
	want.Write(file)

	srv := w.Node(0).App("receiver")
	cli := w.Node(1).App("sender")
	var start, end time.Duration
	got := fnv.New64a()
	received := 0
	done := false

	srv.Go("rx", func(t *kern.Thread) {
		l, err := srv.Stack.Listen(t, 2049, stacks.Options{})
		if err != nil {
			done = true
			return
		}
		c, err := l.Accept(t)
		if err != nil {
			done = true
			return
		}
		start = w.Now()
		buf := make([]byte, 65536)
		for received < fileSize {
			n, err := c.Read(t, buf)
			if err != nil || n == 0 {
				break
			}
			got.Write(buf[:n])
			received += n
		}
		end = w.Now()
		done = true
	})
	cli.GoAfter(time.Millisecond, "tx", func(t *kern.Thread) {
		c, err := cli.Stack.Connect(t, w.Endpoint(0, 2049), stacks.Options{})
		if err != nil {
			done = true
			return
		}
		sent := 0
		for sent < fileSize {
			n, err := c.Write(t, file[sent:min(sent+8192, fileSize)])
			if err != nil {
				break
			}
			sent += n
		}
		c.Close(t)
	})
	w.RunUntil(10*time.Minute, func() bool { return done })
	if *statsFlag {
		fmt.Printf("\n--- %v / %v per-layer stats ---\n%s\n", org, net, w.StatsReport())
	}
	if received != fileSize || got.Sum64() != want.Sum64() {
		return 0, 0, false
	}
	d = end - start
	return float64(fileSize) * 8 / d.Seconds() / 1e6, d, true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func main() {
	flag.Parse()
	fmt.Printf("transferring a %d KB file (FNV-checksummed end to end)\n\n", fileSize>>10)
	fmt.Printf("%-14s %-12s %12s %14s %10s\n", "organization", "network", "virtual time", "throughput", "integrity")
	for _, org := range []ulp.Org{ulp.OrgInKernel, ulp.OrgSingleServer, ulp.OrgUserLib} {
		for _, net := range []ulp.Net{ulp.Ethernet, ulp.AN1, ulp.AN1Jumbo} {
			if org == ulp.OrgSingleServer && net != ulp.Ethernet {
				continue // the paper has no mapped AN1 driver for Mach/UX
			}
			mbps, d, ok := transfer(org, net)
			status := "OK"
			if !ok {
				status = "CORRUPT"
			}
			fmt.Printf("%-14v %-12v %12v %11.2f Mb/s %8s\n", org, net, d.Round(time.Millisecond), mbps, status)
		}
	}
}
