// Quickstart: build a two-workstation world running the paper's user-level
// protocol library organization, establish a TCP connection through the
// registry server, exchange data over the shared-memory channels, and print
// what happened — including the protection and demultiplexing machinery
// working underneath.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -stats   # per-layer counter breakdown
package main

import (
	"flag"
	"fmt"
	"time"

	"ulp"
	"ulp/internal/kern"
	"ulp/internal/stacks"
)

func main() {
	stats := flag.Bool("stats", false, "print the per-layer stats breakdown after the run")
	flag.Parse()
	// Two DECstation-class hosts on a 10 Mb/s Ethernet, each running a
	// registry server and the in-kernel network I/O module.
	w := ulp.NewWorld(ulp.Config{Org: ulp.OrgUserLib, Net: ulp.Ethernet})

	server := w.Node(0).App("server")
	client := w.Node(1).App("client")

	done := false

	// The server application links the protocol library, asks its registry
	// to listen, and echoes one round.
	server.Go("server", func(t *kern.Thread) {
		l, err := server.Stack.Listen(t, 7, stacks.Options{})
		if err != nil {
			fmt.Println("listen:", err)
			return
		}
		c, err := l.Accept(t)
		if err != nil {
			fmt.Println("accept:", err)
			return
		}
		fmt.Printf("[%8v] server: accepted connection, state %v\n", w.Now(), c.State())
		buf := make([]byte, 256)
		for {
			n, err := c.Read(t, buf)
			if err != nil || n == 0 {
				c.Close(t)
				return
			}
			fmt.Printf("[%8v] server: echoing %q\n", w.Now(), buf[:n])
			c.Write(t, buf[:n])
		}
	})

	// The client connects — the registry performs the three-way handshake,
	// sets up the shared channel and capability, then hands the live
	// connection to the library. Data then bypasses the server entirely.
	client.GoAfter(time.Millisecond, "client", func(t *kern.Thread) {
		start := w.Now()
		c, err := client.Stack.Connect(t, w.Endpoint(0, 7), stacks.Options{})
		if err != nil {
			fmt.Println("connect:", err)
			done = true
			return
		}
		fmt.Printf("[%8v] client: connected in %v (registry handshake + channel setup + state transfer)\n",
			w.Now(), w.Now()-start)

		for _, msg := range []string{"hello, user-level TCP", "the registry is bypassed now"} {
			c.Write(t, []byte(msg))
			buf := make([]byte, 256)
			total := 0
			for total < len(msg) {
				n, _ := c.Read(t, buf[total:len(msg)])
				total += n
			}
			fmt.Printf("[%8v] client: echo %q\n", w.Now(), buf[:total])
		}
		st := c.Stats()
		fmt.Printf("[%8v] client: closing; %d segments sent, %d received, %d timer ops\n",
			w.Now(), st.SegsSent, st.SegsRcvd, st.TimerOps)
		c.Close(t)
		done = true
	})

	w.RunUntil(time.Minute, func() bool { return done })

	fmt.Println()
	fmt.Println("network I/O module counters:")
	for i := 0; i < w.Nodes(); i++ {
		m := w.Node(i).Mod
		fmt.Printf("  host %d: %d sends verified against templates, %d rejected; demux: %d to channels, %d to kernel default\n",
			i, m.SendOK, m.SendRejected, m.DemuxMatched, m.DemuxDefault)
	}
	if *stats {
		fmt.Println()
		fmt.Println("per-layer stats:")
		fmt.Print(w.StatsReport())
	}
}
