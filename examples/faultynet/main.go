// Faultynet: runs the user-level library over a hostile Ethernet — packet
// loss, duplication, single-bit corruption and reordering injected at the
// wire — and shows the protocol machinery (checksums, retransmission, fast
// retransmit, reassembly) delivering a byte-perfect stream anyway.
//
//	go run ./examples/faultynet
package main

import (
	"bytes"
	"fmt"
	"time"

	"ulp"
	"ulp/internal/kern"
	"ulp/internal/stacks"
	"ulp/internal/wire"
)

const transferSize = 200 << 10

func main() {
	faults := wire.Faults{
		Seed:         7,
		LossProb:     0.05,
		DupProb:      0.02,
		CorruptProb:  0.02,
		ReorderProb:  0.05,
		ReorderDelay: 2 * time.Millisecond,
	}
	fmt.Printf("wire faults: %.0f%% loss, %.0f%% duplication, %.0f%% corruption, %.0f%% reordering\n\n",
		faults.LossProb*100, faults.DupProb*100, faults.CorruptProb*100, faults.ReorderProb*100)

	w := ulp.NewWorld(ulp.Config{Org: ulp.OrgUserLib, Net: ulp.Ethernet, Faults: &faults})
	data := make([]byte, transferSize)
	for i := range data {
		data[i] = byte(i*31 + i>>11)
	}

	srv := w.Node(0).App("receiver")
	cli := w.Node(1).App("sender")
	var got []byte
	var cConn, sConn stacks.Conn
	done := false

	srv.Go("rx", func(t *kern.Thread) {
		l, _ := srv.Stack.Listen(t, 9, stacks.Options{})
		c, err := l.Accept(t)
		if err != nil {
			done = true
			return
		}
		sConn = c
		buf := make([]byte, 65536)
		for len(got) < transferSize {
			n, err := c.Read(t, buf)
			if err != nil || n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		done = true
	})
	cli.GoAfter(time.Millisecond, "tx", func(t *kern.Thread) {
		c, err := cli.Stack.Connect(t, w.Endpoint(0, 9), stacks.Options{})
		if err != nil {
			fmt.Println("connect:", err)
			done = true
			return
		}
		cConn = c
		sent := 0
		for sent < transferSize {
			n, err := c.Write(t, data[sent:])
			if err != nil {
				break
			}
			sent += n
		}
	})
	start := time.Now()
	w.RunUntil(30*time.Minute, func() bool { return done })

	fmt.Printf("transferred %d/%d bytes in %v of virtual time (%.2fs of wall time)\n",
		len(got), transferSize, w.Now().Round(time.Millisecond), time.Since(start).Seconds())
	if bytes.Equal(got, data) {
		fmt.Println("integrity: byte-for-byte intact")
	} else {
		fmt.Println("integrity: CORRUPTED — protocol failure!")
	}

	sent, dropped, corrupted, duplicated, _ := w.Seg.Stats()
	fmt.Printf("\nwire:   %d frames sent, %d dropped, %d corrupted, %d duplicated\n",
		sent, dropped, corrupted, duplicated)
	if cConn != nil {
		st := cConn.Stats()
		fmt.Printf("sender: %d segments, %d timeout retransmissions, %d fast retransmissions, %d dup-acks seen\n",
			st.SegsSent, st.Rexmits, st.FastRexmits, st.DupAcksRcvd)
	}
	if sConn != nil {
		st := sConn.Stats()
		fmt.Printf("receiver: %d segments received, %d out-of-order arrivals queued for reassembly\n",
			st.SegsRcvd, st.OutOfOrder)
	}
}
