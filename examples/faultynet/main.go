// Faultynet: runs the user-level library over a hostile Ethernet — packet
// loss, duplication, single-bit corruption and reordering injected at the
// wire — and shows the protocol machinery (checksums, retransmission, fast
// retransmit, reassembly) delivering a byte-perfect stream anyway.
//
// Exits non-zero if the transfer fails verification, so it doubles as a
// scriptable smoke test.
//
//	go run ./examples/faultynet
package main

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"time"

	"ulp"
	"ulp/internal/kern"
	"ulp/internal/stacks"
	"ulp/internal/wire"
)

const transferSize = 200 << 10

// shared is the state the simulated application threads write and the main
// goroutine reads after the run. The simulator hands control between
// goroutines one at a time, but the mutex makes the sharing discipline
// explicit and keeps the example clean under the race detector.
type shared struct {
	mu           sync.Mutex
	got          []byte
	cConn, sConn stacks.Conn
	done         bool
	failure      string
}

func (s *shared) fail(msg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failure == "" {
		s.failure = msg
	}
	s.done = true
}

func main() {
	faults := wire.Faults{
		Seed:         7,
		LossProb:     0.05,
		DupProb:      0.02,
		CorruptProb:  0.02,
		ReorderProb:  0.05,
		ReorderDelay: 2 * time.Millisecond,
	}
	fmt.Printf("wire faults: %.0f%% loss, %.0f%% duplication, %.0f%% corruption, %.0f%% reordering\n\n",
		faults.LossProb*100, faults.DupProb*100, faults.CorruptProb*100, faults.ReorderProb*100)

	w := ulp.NewWorld(ulp.Config{Org: ulp.OrgUserLib, Net: ulp.Ethernet, Faults: &faults})
	data := make([]byte, transferSize)
	for i := range data {
		data[i] = byte(i*31 + i>>11)
	}

	srv := w.Node(0).App("receiver")
	cli := w.Node(1).App("sender")
	st := &shared{}

	srv.Go("rx", func(t *kern.Thread) {
		l, _ := srv.Stack.Listen(t, 9, stacks.Options{})
		c, err := l.Accept(t)
		if err != nil {
			st.fail(fmt.Sprintf("accept: %v", err))
			return
		}
		st.mu.Lock()
		st.sConn = c
		st.mu.Unlock()
		buf := make([]byte, 65536)
		total := 0
		for total < transferSize {
			n, err := c.Read(t, buf)
			if err != nil {
				st.fail(fmt.Sprintf("receiver read: %v", err))
				return
			}
			if n == 0 {
				break
			}
			st.mu.Lock()
			st.got = append(st.got, buf[:n]...)
			total = len(st.got)
			st.mu.Unlock()
		}
		st.mu.Lock()
		st.done = true
		st.mu.Unlock()
	})
	cli.GoAfter(time.Millisecond, "tx", func(t *kern.Thread) {
		c, err := cli.Stack.Connect(t, w.Endpoint(0, 9), stacks.Options{})
		if err != nil {
			st.fail(fmt.Sprintf("connect: %v", err))
			return
		}
		st.mu.Lock()
		st.cConn = c
		st.mu.Unlock()
		sent := 0
		for sent < transferSize {
			n, err := c.Write(t, data[sent:])
			if err != nil {
				st.fail(fmt.Sprintf("sender write: %v", err))
				return
			}
			sent += n
		}
	})
	start := time.Now()
	w.RunUntil(30*time.Minute, func() bool {
		st.mu.Lock()
		defer st.mu.Unlock()
		return st.done
	})

	st.mu.Lock()
	defer st.mu.Unlock()
	fmt.Printf("transferred %d/%d bytes in %v of virtual time (%.2fs of wall time)\n",
		len(st.got), transferSize, w.Now().Round(time.Millisecond), time.Since(start).Seconds())

	ok := true
	if st.failure != "" {
		fmt.Println("failure:", st.failure)
		ok = false
	}
	if !st.done {
		fmt.Println("failure: transfer did not complete within the virtual-time budget")
		ok = false
	}
	if bytes.Equal(st.got, data) {
		fmt.Println("integrity: byte-for-byte intact")
	} else {
		fmt.Println("integrity: CORRUPTED — protocol failure!")
		ok = false
	}

	sent, dropped, corrupted, duplicated, reordered, _ := w.Seg.Stats()
	fmt.Printf("\nwire:   %d frames sent, %d dropped, %d corrupted, %d duplicated, %d reordered\n",
		sent, dropped, corrupted, duplicated, reordered)
	if st.cConn != nil {
		cs := st.cConn.Stats()
		fmt.Printf("sender: %d segments, %d timeout retransmissions, %d fast retransmissions, %d dup-acks seen\n",
			cs.SegsSent, cs.Rexmits, cs.FastRexmits, cs.DupAcksRcvd)
	}
	if st.sConn != nil {
		ss := st.sConn.Stats()
		fmt.Printf("receiver: %d segments received, %d out-of-order arrivals queued for reassembly\n",
			ss.SegsRcvd, ss.OutOfOrder)
	}
	if !ok {
		os.Exit(1)
	}
}
