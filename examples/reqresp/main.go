// Reqresp: the paper's latency-critical workload — request-response
// traffic, the kind that motivated specialized protocols "in lieu of
// existing byte-stream protocols" (§1.1). It runs a small RPC-style
// workload three ways:
//
//  1. TCP with stock options, under the user-level library;
//
//  2. TCP specialized for the application with the §5 "canned options"
//     (NoDelay — the simple form of application-specific protocol
//     generation);
//
//  3. UDP on the monolithic kernel stack, the classic request-response
//     transport the paper contrasts with byte streams.
//
//     go run ./examples/reqresp
package main

import (
	"fmt"
	"time"

	"ulp"
	"ulp/internal/kern"
	"ulp/internal/stacks"
	"ulp/internal/udp"
)

const ops = 25

// tcpRPC measures per-operation latency of header+body requests over TCP.
func tcpRPC(opts stacks.Options) (time.Duration, bool) {
	w := ulp.NewWorld(ulp.Config{Org: ulp.OrgUserLib, Net: ulp.Ethernet})
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	var perOp time.Duration
	done := false
	srv.Go("srv", func(t *kern.Thread) {
		l, err := srv.Stack.Listen(t, 111, opts)
		if err != nil {
			done = true
			return
		}
		c, err := l.Accept(t)
		if err != nil {
			done = true
			return
		}
		buf := make([]byte, 64)
		for {
			got := 0
			for got < 16 {
				n, _ := c.Read(t, buf[got:16])
				if n == 0 {
					return
				}
				got += n
			}
			c.Write(t, []byte("result: 42......"))
		}
	})
	cli.GoAfter(time.Millisecond, "cli", func(t *kern.Thread) {
		c, err := cli.Stack.Connect(t, w.Endpoint(0, 111), opts)
		if err != nil {
			done = true
			return
		}
		buf := make([]byte, 64)
		start := w.Now()
		for i := 0; i < ops; i++ {
			c.Write(t, []byte("rpc-hdr|")) // marshalled header
			c.Write(t, []byte("args(7) ")) // marshalled arguments
			got := 0
			for got < 16 {
				n, _ := c.Read(t, buf[got:16])
				got += n
			}
		}
		perOp = (w.Now() - start) / ops
		done = true
	})
	w.RunUntil(time.Minute, func() bool { return done })
	return perOp, done && perOp > 0
}

// udpRPC measures the same workload over the kernel datagram service.
func udpRPC() (time.Duration, bool) {
	w := ulp.NewWorld(ulp.Config{Org: ulp.OrgInKernel, Net: ulp.Ethernet})
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	var perOp time.Duration
	done := false
	srv.Go("srv", func(t *kern.Thread) {
		sock, err := w.Node(0).UDP().Bind(t, 111)
		if err != nil {
			done = true
			return
		}
		for {
			req := sock.Recv(t)
			sock.SendTo(t, req.From, []byte("result: 42......"))
		}
	})
	cli.GoAfter(time.Millisecond, "cli", func(t *kern.Thread) {
		sock, err := w.Node(1).UDP().Bind(t, 1111)
		if err != nil {
			done = true
			return
		}
		start := w.Now()
		for i := 0; i < ops; i++ {
			sock.SendTo(t, udp.Endpoint{IP: w.Node(0).IP, Port: 111}, []byte("rpc-hdr|args(7) "))
			sock.Recv(t)
		}
		perOp = (w.Now() - start) / ops
		done = true
	})
	w.RunUntil(time.Minute, func() bool { return done })
	return perOp, done && perOp > 0
}

func main() {
	fmt.Printf("request-response workload: %d RPCs of 16-byte requests/replies over the Ethernet\n\n", ops)
	if d, ok := tcpRPC(stacks.Options{}); ok {
		fmt.Printf("  %-44s %10v/op\n", "TCP, stock protocol (user-level library)", d)
	}
	if d, ok := tcpRPC(stacks.Options{NoDelay: true, NoDelayedAck: true}); ok {
		fmt.Printf("  %-44s %10v/op\n", "TCP, application-specific variant (NoDelay)", d)
	}
	if d, ok := udpRPC(); ok {
		fmt.Printf("  %-44s %10v/op\n", "UDP request-response (in-kernel)", d)
	}
	fmt.Println("\nThe two-write requests collide with Nagle under the stock protocol;")
	fmt.Println("the specialized variant recovers request-response latency, the §5 idea.")
}
